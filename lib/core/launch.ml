module Engine = Vmht_sim.Engine
module Addr_space = Vmht_vm.Addr_space
module Mmu = Vmht_vm.Mmu
module Scratchpad = Vmht_mem.Scratchpad
module Dma = Vmht_mem.Dma
module Accel = Vmht_hls.Accel
module Cpu = Vmht_cpu.Cpu
module Ir = Vmht_ir.Ir
module Profile = Vmht_obs.Profile

type dir = In | Out | InOut

type buffer = { base : int; words : int; dir : dir }

type request = { args : int list; buffers : buffer list }

type breakdown = {
  stage_cycles : int;
  compute_cycles : int;
  drain_cycles : int;
}

type result = {
  ret : int option;
  total_cycles : int;
  phases : breakdown;
  attribution : Vmht_obs.Attribution.t;
  mmu_stats : Mmu.stats option;
  tlb_hit_rate : float option;
  accel_stats : Accel.run_stats option;
  page_faults : int;
}

exception Window_overflow of string

let word_bytes = Vmht_mem.Phys_mem.word_bytes

let phase_begin soc phase =
  Soc.emit soc ~component:"launch" (Vmht_obs.Event.Phase_begin { phase })

let phase_end soc phase =
  Soc.emit soc ~component:"launch" (Vmht_obs.Event.Phase_end { phase })

let accel_observer soc =
  if Soc.observing soc then Some (Soc.emitter soc ~component:"accel")
  else None

(* The compute phase of a hardware thread, dispatched to the configured
   backend.  [Model] interprets the scheduled FSM directly; [Rtl]
   parses the emitted Verilog text back and executes the emitted bytes
   against the very same [port] — identical translation, banking and
   fault draws — so the two backends are contractually result- and
   cycle-identical (the rtl1 experiment enforces it).  The RTL path
   reports [ret] only when the kernel returns a value: the emitted
   module always has a [result] register, but a void kernel's is
   meaningless. *)
let exec_thread soc (hw : Flow.hw_thread) ~stats ~port ~args =
  let cfg = Soc.config soc in
  match cfg.Config.backend with
  | Config.Model ->
    Accel.run ?observer:(accel_observer soc) ~stats
      ~ports:(Config.accel_width cfg) ~fastpath:cfg.Config.fastpath
      hw.Flow.fsm ~port ~args
  | Config.Rtl ->
    if hw.Flow.fsm.Vmht_hls.Fsm.plans <> [] then
      invalid_arg
        "Launch: the rtl backend does not support pipelined schedules \
         (the emitted FSM is unpipelined); drop --pipeline or use the \
         model backend";
    let m = Vmht_rtl.Parse.parse_memo hw.Flow.verilog in
    let out = Vmht_rtl.Eval.run ~stats ~ports:(Config.accel_width cfg) m ~port ~args in
    let returns_value =
      List.exists
        (fun (b : Ir.block) ->
          match b.Ir.term with Ir.Ret (Some _) -> true | _ -> false)
        hw.Flow.fsm.Vmht_hls.Fsm.func.Ir.blocks
    in
    if returns_value then out.Vmht_rtl.Eval.result else None

let run_sw soc func request =
  let t0 = Engine.now_p () in
  let cpu = Soc.cpu soc in
  let before = Cpu.stats cpu in
  phase_begin soc "compute";
  let ret =
    Engine.with_phase Profile.Actor (fun () ->
        Cpu.run_func cpu func ~args:request.args)
  in
  phase_end soc "compute";
  let tm = Engine.now_p () in
  (* Make the thread's results visible to the rest of the system. *)
  phase_begin soc "drain";
  Engine.with_phase Profile.Memory (fun () -> Cpu.flush_cache cpu);
  phase_end soc "drain";
  let t1 = Engine.now_p () in
  let after = Cpu.stats cpu in
  let faults = after.Cpu.faults - before.Cpu.faults in
  let mem = after.Cpu.mem_cycles - before.Cpu.mem_cycles in
  (* The CPU runs as one process, so its load/store spans partition
     the compute phase exactly: what is not memory time is execution. *)
  let fault = faults * Cpu.fault_penalty cpu in
  let attribution =
    {
      Vmht_obs.Attribution.zero with
      Vmht_obs.Attribution.fault;
      dram = mem - fault;
      compute = tm - t0 - mem;
      drain = t1 - tm;
    }
  in
  {
    ret;
    total_cycles = t1 - t0;
    phases = { stage_cycles = 0; compute_cycles = t1 - t0; drain_cycles = 0 };
    attribution;
    mmu_stats = None;
    tlb_hit_rate = None;
    accel_stats = None;
    page_faults = faults;
  }

(* Cache maintenance the host performs after any hardware thread
   completes, so CPU reads observe the accelerator's writes. *)
let host_cache_maintenance soc =
  Engine.with_phase Profile.Memory (fun () ->
      Engine.wait (Soc.config soc).Config.cache_maintenance_cycles;
      Vmht_mem.Cache.invalidate_all (Cpu.cache (Soc.cpu soc)))

let bus_wait_cycles soc =
  (Soc.bus_stats soc).Vmht_mem.Bus.bus.Vmht_sim.Resource.wait_cycles

let run_hw_vm soc (hw : Flow.hw_thread) request =
  let t0 = Engine.now_p () in
  let bw0 = bus_wait_cycles soc in
  let mmu = Soc.make_mmu soc in
  let port, flush_buffer, meter = Soc.vm_port_metered soc mmu in
  let stats = Accel.fresh_stats () in
  phase_begin soc "compute";
  let ret =
    Engine.with_phase Profile.Actor (fun () ->
        exec_thread soc hw ~stats ~port ~args:request.args)
  in
  phase_end soc "compute";
  let t1 = Engine.now_p () in
  let bw1 = bus_wait_cycles soc in
  phase_begin soc "drain";
  Engine.with_phase Profile.Memory flush_buffer;
  host_cache_maintenance soc;
  phase_end soc "drain";
  let t2 = Engine.now_p () in
  let mstats = Mmu.stats mmu in
  (* The port meter's two spans are measured inside the vm-port arbiter
     (never overlapping), and the MMU is private to this run, so the
     split below partitions [t1 - t0] exactly: translate covers TLB
     pipeline time outside walks, walks cover refills net of fault
     handling, and what the meter never saw is FSM compute.  Bus
     queueing below the port is split out of the memory span — clamped,
     because other masters' waits land in the same shared counter. *)
  let fault =
    mstats.Mmu.page_faults * (Soc.config soc).Config.mmu.Mmu.fault_penalty
  in
  let walk_all = mstats.Mmu.walk_cycles in
  let bus_wait = min (bw1 - bw0) meter.Soc.mem_cycles in
  let attribution =
    {
      Vmht_obs.Attribution.translate = meter.Soc.translate_cycles - walk_all;
      walk = walk_all - fault;
      fault;
      bus_wait;
      dram = meter.Soc.mem_cycles - bus_wait;
      compute = t1 - t0 - meter.Soc.translate_cycles - meter.Soc.mem_cycles;
      dma_stage = 0;
      drain = t2 - t1;
    }
  in
  {
    ret;
    total_cycles = t2 - t0;
    phases =
      {
        stage_cycles = 0;
        compute_cycles = t1 - t0;
        drain_cycles = t2 - t1;
      };
    attribution;
    mmu_stats = Some mstats;
    tlb_hit_rate = Some (Mmu.tlb_hit_rate mmu);
    accel_stats = Some stats;
    page_faults = mstats.Mmu.page_faults;
  }

(* Page-sized (phys, words) chunks covering a buffer, pinning (and if
   needed demand-materializing) each page on the way. *)
let pin_and_chunk soc buffer =
  let aspace = Soc.aspace soc in
  let config = Soc.config soc in
  let page = 1 lsl config.Config.page_shift in
  let bytes = buffer.words * word_bytes in
  (* Pinning materializes lazy pages: the host touches each one. *)
  let resolve va =
    match Addr_space.translate aspace va with
    | Some p -> p
    | None ->
      if Addr_space.handle_fault aspace ~vaddr:va then
        match Addr_space.translate aspace va with
        | Some p -> p
        | None -> raise (Addr_space.Segfault va)
      else raise (Addr_space.Segfault va)
  in
  let rec go va acc =
    if va >= buffer.base + bytes then List.rev acc
    else begin
      Engine.wait config.Config.pin_cycles_per_page;
      let phys = resolve va in
      let chunk_words =
        min (page / word_bytes) ((buffer.base + bytes - va) / word_bytes)
      in
      go (va + page) ((phys, chunk_words) :: acc)
    end
  in
  Engine.with_phase Profile.Translate (fun () -> go buffer.base [])

let run_hw_dma soc (hw : Flow.hw_thread) request =
  let t0 = Engine.now_p () in
  let pad, dma = Soc.make_scratchpad soc in
  let total_words =
    List.fold_left (fun acc b -> acc + b.words) 0 request.buffers
  in
  if total_words > Scratchpad.capacity_words pad then
    raise
      (Window_overflow
         (Printf.sprintf
            "buffers need %d words but the scratchpad holds %d" total_words
            (Scratchpad.capacity_words pad)));
  (* Page pinning is the DMA style's analogue of translation; spans
     are measured so the staging/draining segments can report pure copy
     time.  All of this runs in the launching process, serially. *)
  let pin_cycles = ref 0 in
  let timed_pin b =
    let p0 = Engine.now_p () in
    let chunks = pin_and_chunk soc b in
    pin_cycles := !pin_cycles + (Engine.now_p () - p0);
    chunks
  in
  (* Stage: pin pages, program windows, DMA the inputs in. *)
  phase_begin soc "stage";
  List.iter
    (fun b -> Scratchpad.map_window pad ~base:b.base ~words:b.words)
    request.buffers;
  List.iter
    (fun b ->
      let chunks = timed_pin b in
      match b.dir with
      | In | InOut ->
        Engine.with_phase Profile.Memory (fun () ->
            Dma.copy_in_scattered dma pad ~chunks
              ~dst_word:(Scratchpad.local_of_vaddr pad b.base))
      | Out -> ())
    request.buffers;
  phase_end soc "stage";
  let t1 = Engine.now_p () in
  let pin_stage = !pin_cycles in
  (* Compute on the scratchpad. *)
  let port = Soc.scratchpad_port pad in
  let stats = Accel.fresh_stats () in
  phase_begin soc "compute";
  let ret =
    Engine.with_phase Profile.Actor (fun () ->
        exec_thread soc hw ~stats ~port ~args:request.args)
  in
  phase_end soc "compute";
  let t2 = Engine.now_p () in
  (* Drain: DMA the outputs back, then cache maintenance. *)
  phase_begin soc "drain";
  List.iter
    (fun b ->
      match b.dir with
      | Out | InOut ->
        let chunks = timed_pin b in
        Engine.with_phase Profile.Memory (fun () ->
            Dma.copy_out_scattered dma pad
              ~src_word:(Scratchpad.local_of_vaddr pad b.base)
              ~chunks)
      | In -> ())
    request.buffers;
  host_cache_maintenance soc;
  phase_end soc "drain";
  let t3 = Engine.now_p () in
  let pin_drain = !pin_cycles - pin_stage in
  let attribution =
    {
      Vmht_obs.Attribution.zero with
      Vmht_obs.Attribution.translate = !pin_cycles;
      compute = t2 - t1;
      dma_stage = t1 - t0 - pin_stage;
      drain = t3 - t2 - pin_drain;
    }
  in
  {
    ret;
    total_cycles = t3 - t0;
    phases =
      {
        stage_cycles = t1 - t0;
        compute_cycles = t2 - t1;
        drain_cycles = t3 - t2;
      };
    attribution;
    mmu_stats = None;
    tlb_hit_rate = None;
    accel_stats = Some stats;
    page_faults = 0;
  }

let run_hw_once soc hw request =
  match hw.Flow.style with
  | Wrapper.Vm_iface -> run_hw_vm soc hw request
  | Wrapper.Dma_iface -> run_hw_dma soc hw request

(* Thread-level recovery: an [Injector.Abort] escaping a run means the
   thread cannot continue in place (a DMA transfer abort), so the host
   re-runs the whole copy-in/compute/copy-out.  The loop needs no
   attempt cap: injector streams are shared across re-runs (see
   [Soc.make_injector]), so the plan's injection budget bounds how
   often the abort can re-fire.  Cycles lost to discarded attempts are
   charged to the fault attribution bucket, keeping the partition
   invariant (attribution sums to [total_cycles]) intact. *)
(* Surface what the optimizer did to this thread's datapath in the
   trace and metrics: one [Pass_run] event per scheduled pass, and
   cumulative [pass.*] counters over every launch on this SoC. *)
let observe_passes soc (hw : Flow.hw_thread) =
  let report = hw.Flow.fsm.Vmht_hls.Fsm.stats.Vmht_hls.Fsm.opt_report in
  let kernel = hw.Flow.kernel.Vmht_lang.Ast.kname in
  List.iter
    (fun (s : Vmht_ir.Pass_manager.pass_stat) ->
      if Soc.observing soc then
        Soc.emit soc ~component:"hls"
          (Vmht_obs.Event.Pass_run
             {
               pass = s.Vmht_ir.Pass_manager.pass;
               rewrites = s.Vmht_ir.Pass_manager.rewrites;
               kernel;
             });
      Vmht_obs.Metrics.incr
        ~by:s.Vmht_ir.Pass_manager.rewrites
        (Vmht_obs.Metrics.counter (Soc.metrics soc)
           (Printf.sprintf "pass.%s.rewrites" s.Vmht_ir.Pass_manager.pass)))
    report.Vmht_ir.Pass_manager.stats

let run_hw soc hw request =
  observe_passes soc hw;
  let t_start = Engine.now_p () in
  let rec go attempt ~last_abort =
    match run_hw_once soc hw request with
    | result -> (
      match last_abort with
      | None -> result
      | Some (target, fault) ->
        Soc.emit soc ~component:"launch"
          (Vmht_obs.Event.Fault_recover { target; fault; attempt });
        let total = Engine.now_p () - t_start in
        let lost = total - result.total_cycles in
        {
          result with
          total_cycles = total;
          attribution =
            {
              result.attribution with
              Vmht_obs.Attribution.fault =
                result.attribution.Vmht_obs.Attribution.fault + lost;
            };
        })
    | exception Vmht_fault.Injector.Abort { component; fault } ->
      Soc.emit soc ~component:"launch"
        (Vmht_obs.Event.Fault_abort { target = component; fault });
      Vmht_obs.Metrics.incr
        (Vmht_obs.Metrics.counter (Soc.metrics soc) "fault.thread_aborts");
      go (attempt + 1) ~last_abort:(Some (component, fault))
  in
  go 1 ~last_abort:None

let run_to_completion soc main =
  let outcome = ref None in
  Vmht_obs.Span.with_span ~cat:"flow" "simulate" (fun () ->
      Soc.run soc (fun () ->
          outcome :=
            Some (match main () with v -> Ok v | exception e -> Error e)));
  (* Every run funnels through here, so this is where the SoC's
     translation-hierarchy counters reach the process-wide totals. *)
  Soc.flush_vm_totals soc;
  match !outcome with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> failwith "Launch.run_to_completion: main never ran"
