(** Interface-wrapper synthesis: the hardware that sits between a bare
    HLS datapath and the system.

    Two styles, matching the paper's comparison:
    - the VM wrapper gives the thread a private TLB and (optionally) a
      hardware page-table walker, so the datapath issues virtual
      addresses straight onto the shared bus;
    - the copy-based DMA wrapper gives the thread scratchpad BRAM plus
      a DMA engine and address-window comparators, and requires the
      host to stage data in and out.

    The area models here are what Table 2 reports. *)

type style = Vm_iface | Dma_iface

val style_name : style -> string

val vm_area : Vmht_vm.Mmu.config -> Vmht_hls.Optypes.area
(** TLB (CAM tags for fully-associative, RAM tags otherwise) + walker
    FSM + bus port adapter. *)

val dma_area :
  scratchpad_words:int -> windows:int -> Vmht_hls.Optypes.area
(** DMA engine + window comparators + scratchpad BRAM. *)

val area : Config.t -> style -> Vmht_hls.Optypes.area
(** Wrapper area for the style under [config]; the DMA style's window
    comparator bank is sized by [config.wrapper_windows]. *)

val ports : style -> string list
(** Extra top-level RTL ports the wrapper adds to the generated
    module. *)
