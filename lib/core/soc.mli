(** The composed system-on-chip: CPU + shared bus + DRAM + one process
    address space, onto which hardware threads are instantiated. *)

type t

val create : Config.t -> t

val config : t -> Config.t

val engine : t -> Vmht_sim.Engine.t

val aspace : t -> Vmht_vm.Addr_space.t

val bus : t -> Vmht_mem.Bus.t

val cpu : t -> Vmht_cpu.Cpu.t

val now : t -> int

val run : t -> (unit -> unit) -> unit
(** Spawn [main] as the root simulated process and run the engine to
    quiescence.  Exceptions raised inside propagate. *)

val make_mmu : ?aspace:Vmht_vm.Addr_space.t * int -> t -> Vmht_vm.Mmu.t
(** A fresh MMU (private TLB) for one VM-enabled hardware thread;
    registered so shootdowns and stats reach it.  By default it serves
    the primary process; pass an [(aspace, asid)] from
    {!create_process} to attach the thread elsewhere. *)

val create_process : t -> Vmht_vm.Addr_space.t * int
(** A further process: a fresh address space (own page table, shared
    physical frame pool) with a fresh ASID. *)

val unmap_page : t -> Vmht_vm.Addr_space.t -> vaddr:int -> unit
(** Unmap a page and shoot the translation down from every registered
    MMU — the coherence step a real kernel performs with IPIs.  Timed
    when called in process context is the caller's concern (charge
    {!Config.t.cache_maintenance_cycles}-class costs as appropriate);
    the bookkeeping itself is immediate. *)

val vm_port : t -> Vmht_vm.Mmu.t -> Vmht_hls.Accel.port * (unit -> unit)
(** The accelerator-facing memory port of a VM wrapper: translation
    through the given MMU plus a private stream buffer
    ([Config.accel_stream_buffer]) in front of the shared bus.  The
    second component is the timed flush of that buffer, to be called
    when the thread completes. *)

val make_scratchpad : ?words:int -> t -> Vmht_mem.Scratchpad.t * Vmht_mem.Dma.t
(** Scratchpad + DMA engine for one copy-based accelerator. *)

val scratchpad_port : Vmht_mem.Scratchpad.t -> Vmht_hls.Accel.port

val mmus : t -> Vmht_vm.Mmu.t list

val trace : t -> Vmht_sim.Trace.t
(** The system trace.  Disabled (and free) by default; after
    {!enable_tracing} every bus transaction and every MMU miss/fault is
    recorded with its timestamp. *)

val enable_tracing : t -> unit

val bus_stats : t -> Vmht_mem.Bus.stats

val dram_row_hit_rate : t -> float
