(** The composed system-on-chip: CPU + shared bus + DRAM + one process
    address space, onto which hardware threads are instantiated.

    The SoC also owns the observability layer: a {!Vmht_obs.Metrics.t}
    registry every component's counters are synced into under
    ["component.metric"] names, and (once {!enable_tracing} is called)
    typed-event observers on every component feeding the bounded trace
    ring and the duration histograms. *)

type t

type port_meter = {
  mutable translate_cycles : int;
      (** cycles inside [Mmu.translate]: TLB lookups, walks, faults *)
  mutable mem_cycles : int;
      (** cycles in the stream buffer and on the bus behind it *)
}
(** Wall-clock attribution meter of one VM wrapper port.  Spans are
    measured inside the port's single-issue arbiter, so they never
    overlap and [translate_cycles + mem_cycles + compute] partitions
    the thread's execution exactly. *)

val create : Config.t -> t

val id : t -> int
(** Process-wide SoC number (1, 2, ...): the Chrome-trace pid, so
    several SoCs exported into one document keep distinct tracks. *)

val config : t -> Config.t

val engine : t -> Vmht_sim.Engine.t

val aspace : t -> Vmht_vm.Addr_space.t

val bus : t -> Vmht_mem.Bus.t

val cpu : t -> Vmht_cpu.Cpu.t

val now : t -> int

val run : t -> (unit -> unit) -> unit
(** Spawn [main] as the root simulated process and run the engine to
    quiescence.  Exceptions raised inside propagate. *)

val make_mmu : ?aspace:Vmht_vm.Addr_space.t * int -> t -> Vmht_vm.Mmu.t
(** A fresh MMU (private TLB) for one VM-enabled hardware thread;
    registered so shootdowns and stats reach it.  By default it serves
    the primary process; pass an [(aspace, asid)] from
    {!create_process} to attach the thread elsewhere. *)

val create_process : t -> Vmht_vm.Addr_space.t * int
(** A further process: a fresh address space (own page table, shared
    physical frame pool) with a fresh ASID. *)

val unmap_page : t -> Vmht_vm.Addr_space.t -> vaddr:int -> unit
(** Unmap a page (returning its frame, see {!Vmht_vm.Page_table.unmap})
    and shoot the translation down from every structure that may hold
    it: each registered MMU's L1 TLB, the shared L2 TLB, and the walk
    caches of the MMUs serving this space — the coherence step a real
    kernel performs with IPIs.  Timed when called in process context is
    the caller's concern (charge
    {!Config.t.cache_maintenance_cycles}-class costs as appropriate);
    the bookkeeping itself is immediate. *)

val vm_port : t -> Vmht_vm.Mmu.t -> Vmht_hls.Accel.port * (unit -> unit)
(** The accelerator-facing memory port of a VM wrapper: translation
    through the given MMU plus a private stream buffer
    ([Config.accel_stream_buffer]) in front of the shared bus.  The
    second component is the timed flush of that buffer, to be called
    when the thread completes. *)

val vm_port_metered :
  t ->
  Vmht_vm.Mmu.t ->
  Vmht_hls.Accel.port * (unit -> unit) * port_meter
(** Like {!vm_port}, additionally returning the port's attribution
    meter (read it after the thread completes). *)

val make_scratchpad : ?words:int -> t -> Vmht_mem.Scratchpad.t * Vmht_mem.Dma.t
(** Scratchpad + DMA engine for one copy-based accelerator. *)

val scratchpad_port : Vmht_mem.Scratchpad.t -> Vmht_hls.Accel.port

val mmus : t -> Vmht_vm.Mmu.t list

val tlb2 : t -> Vmht_vm.Tlb2.t option
(** The SoC's shared second-level TLB, when [Config.tlb2.enabled]. *)

val flush_vm_totals : t -> unit
(** Push this SoC's L2-TLB and walk-cache counters into the
    process-wide {!Vmht_vm.Vm_totals} sums, as a delta since the last
    flush (safe to call repeatedly).  The launcher flushes after every
    completed run. *)

val make_injector : t -> component:string -> Vmht_fault.Injector.t
(** The fault-injector stream for one component class, drawn from
    [(Config.seed, component)] and memoized by name — all MMUs share
    "mmu", all DMA engines share "dma", so the per-stream injection
    budget is global across a thread's re-runs (which is what bounds
    abort storms).  When the config's plan is disabled the injector
    never fires.  The SoC wires the shared bus and DRAM at {!create}
    time, and each MMU and DMA engine as they are made. *)

val fault_stats : t -> Vmht_fault.Injector.stats
(** Aggregate injection counters over every injector created so far. *)

val trace : t -> Vmht_sim.Trace.t
(** The system trace.  Disabled (and free) by default; after
    {!enable_tracing} every component reports typed events (bus
    transactions, TLB hits/misses, walks, faults, DRAM row activity,
    cache and DMA traffic, FSM states) with start cycle and duration. *)

val enable_tracing : t -> unit
(** Turn the trace ring on and install typed-event observers on every
    component built so far; components created later join
    automatically. *)

val observing : t -> bool

val metrics : t -> Vmht_obs.Metrics.t
(** The SoC-wide metrics registry.  Duration histograms are fed live
    while observing; call {!sync_metrics} before snapshotting so the
    counters reflect the components' current totals. *)

val sync_metrics : t -> unit
(** Copy every component's counters into the registry
    (["mmu.tlb_misses"], ["bus.wait_cycles"], ["dram.row_hits"],
    ["cache.read_misses"], ["dma.words_in"], ...).  Works whether or
    not tracing was enabled. *)

val emit :
  t -> component:string -> ?duration:int -> Vmht_obs.Event.kind -> unit
(** Record one event as [component] would: stamped at
    [now - duration] and routed to the trace ring and metrics.  Used by
    the launcher for phase/thread markers. *)

val emitter : t -> component:string -> Vmht_obs.Event.emitter
(** The observer hook {!emit} is built from, for handing to components
    that take an [Event.emitter]. *)

val bus_stats : t -> Vmht_mem.Bus.stats

val dram_row_hit_rate : t -> float
