module Ast = Vmht_lang.Ast
module Fsm = Vmht_hls.Fsm
module Optypes = Vmht_hls.Optypes
module Verilog = Vmht_hls.Verilog

type hw_thread = {
  kernel : Ast.kernel;
  fsm : Fsm.t;
  style : Wrapper.style;
  datapath_area : Optypes.area;
  wrapper_area : Optypes.area;
  total_area : Optypes.area;
  verilog : string;
  synthesis_seconds : float;
}

let synthesize_uncached ~windows (config : Config.t) style kernel =
  Vmht_obs.Span.with_span ~cat:"flow"
    ("synth:" ^ kernel.Ast.kname)
    (fun () ->
  let started = Sys.time () in
  let fsm =
    (* Pass scheduling and FSM construction; the optimizer opens its
       own nested "passes" span inside. *)
    Vmht_obs.Span.with_span ~cat:"flow" "schedule" (fun () ->
        Fsm.synthesize ~resources:config.Config.resources
          ~unroll:config.Config.unroll
          ~pipeline:config.Config.pipeline_loops
          ~schedule:(Config.schedule config) kernel)
  in
  let wrapper_area = Wrapper.area config style ~windows in
  let verilog =
    Vmht_obs.Span.with_span ~cat:"flow" "emit" (fun () ->
        Verilog.emit_with_wrapper fsm ~wrapper_ports:(Wrapper.ports style))
  in
  let finished = Sys.time () in
  {
    kernel;
    fsm;
    style;
    datapath_area = fsm.Fsm.area;
    wrapper_area;
    total_area = Optypes.add_area fsm.Fsm.area wrapper_area;
    verilog;
    synthesis_seconds = finished -. started;
  })

(* --- synthesis memo cache ----------------------------------------- *)

(* Synthesis is pure (modulo the wall-clock stamp), so results are
   memoized process-wide, keyed by kernel name, wrapper style, config
   fingerprint and window count.  Sweeps that vary only runtime
   parameters (data size, seed, thread count) then synthesize each
   kernel once instead of once per sweep point.

   The cache is single-flight: concurrent requests for the same key
   block on the one in-progress synthesis rather than duplicating it,
   so every caller in a process sees the *same* [hw_thread] value —
   which keeps anything derived from it (including the reported
   synthesis time) identical across callers, whatever the parallel
   schedule.  Keys add the kernel name, but the stored kernel AST is
   compared structurally on hit, so a name collision degrades to a
   miss instead of returning the wrong hardware. *)

type cache_stats = { cache_hits : int; cache_misses : int; cache_entries : int }

type cache_state = In_flight | Ready of Ast.kernel * hw_thread

type cache_slot = { mutable state : cache_state }

let cache_mutex = Mutex.create ()

let cache_cond = Condition.create ()

let cache_table : (string * string * string * int, cache_slot) Hashtbl.t =
  Hashtbl.create 64

let cache_hits = Atomic.make 0

let cache_misses = Atomic.make 0

let cache_stats () =
  Mutex.lock cache_mutex;
  let entries = Hashtbl.length cache_table in
  Mutex.unlock cache_mutex;
  {
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses;
    cache_entries = entries;
  }

let reset_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache_table;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0;
  Mutex.unlock cache_mutex

let sync_cache_metrics m =
  let s = cache_stats () in
  Vmht_obs.Metrics.set_counter
    (Vmht_obs.Metrics.counter m "flow.synth_cache_hits")
    s.cache_hits;
  Vmht_obs.Metrics.set_counter
    (Vmht_obs.Metrics.counter m "flow.synth_cache_misses")
    s.cache_misses;
  Vmht_obs.Metrics.set_counter
    (Vmht_obs.Metrics.counter m "flow.synth_cache_entries")
    s.cache_entries

(* Process-wide per-pass totals (every synthesis since startup), for
   the bench manifest's pass statistics — same pull model as the cache
   counters above. *)
let sync_pass_metrics m =
  List.iter
    (fun (pass, runs, rewrites) ->
      Vmht_obs.Metrics.set_counter
        (Vmht_obs.Metrics.counter m (Printf.sprintf "pass.%s.runs" pass))
        runs;
      Vmht_obs.Metrics.set_counter
        (Vmht_obs.Metrics.counter m (Printf.sprintf "pass.%s.rewrites" pass))
        rewrites)
    (Vmht_ir.Pass_manager.totals ())

let synthesize ?(cache = true) ?(windows = 3) (config : Config.t) style kernel =
  if not cache then synthesize_uncached ~windows config style kernel
  else begin
    let key =
      ( kernel.Ast.kname,
        Wrapper.style_name style,
        Config.fingerprint config,
        windows )
    in
    let rec acquire () =
      (* Called with [cache_mutex] held; returns with it released. *)
      match Hashtbl.find_opt cache_table key with
      | Some { state = Ready (k, hw) } when k = kernel ->
        Mutex.unlock cache_mutex;
        Atomic.incr cache_hits;
        hw
      | Some ({ state = In_flight } as _slot) ->
        Condition.wait cache_cond cache_mutex;
        acquire ()
      | Some { state = Ready _ } (* same name, different kernel *) | None ->
        let slot = { state = In_flight } in
        Hashtbl.replace cache_table key slot;
        Mutex.unlock cache_mutex;
        Atomic.incr cache_misses;
        let hw =
          try synthesize_uncached ~windows config style kernel
          with e ->
            Mutex.lock cache_mutex;
            Hashtbl.remove cache_table key;
            Condition.broadcast cache_cond;
            Mutex.unlock cache_mutex;
            raise e
        in
        Mutex.lock cache_mutex;
        slot.state <- Ready (kernel, hw);
        Condition.broadcast cache_cond;
        Mutex.unlock cache_mutex;
        hw
    in
    Mutex.lock cache_mutex;
    acquire ()
  end

(* --- typed front-end errors ---------------------------------------- *)

type error =
  | Frontend of { loc : Vmht_lang.Loc.t; msg : string }
  | Unknown_kernel of string

let error_to_string = function
  | Frontend { loc; msg } ->
    Printf.sprintf "line %d, col %d: %s" loc.Vmht_lang.Loc.line
      loc.Vmht_lang.Loc.col msg
  | Unknown_kernel name -> Printf.sprintf "no kernel named '%s'" name

(* The front end reports lexical/syntactic/type/inlining problems by
   raising [Loc.Error]; this is the one place that boundary is crossed
   into typed results, so callers above (CLI, eval) never have to know
   which exceptions the language layer uses. *)
let capture_frontend f =
  match f () with
  | v -> Ok v
  | exception Vmht_lang.Loc.Error (loc, msg) -> Error (Frontend { loc; msg })

let frontend_program source =
  capture_frontend (fun () ->
      Vmht_obs.Span.with_span ~cat:"flow" "parse" (fun () ->
          let program = Vmht_lang.Parser.parse_program source in
          Vmht_lang.Typecheck.check_program program;
          Vmht_lang.Inline.program program))

let synthesize_source_result ?cache ?windows config style source =
  Result.map
    (synthesize ?cache ?windows config style)
    (capture_frontend (fun () ->
         Vmht_obs.Span.with_span ~cat:"flow" "parse" (fun () ->
             Vmht_lang.Parser.parse_kernel source)))

let synthesize_program_result ?cache ?windows config style source ~name =
  Result.bind (frontend_program source) (fun program ->
      match Vmht_lang.Ast.find_kernel program name with
      | Some kernel -> Ok (synthesize ?cache ?windows config style kernel)
      | None -> Error (Unknown_kernel name))

(* Raising wrappers, kept for callers that predate the typed API. *)

let raise_error = function
  | Frontend { loc; msg } -> raise (Vmht_lang.Loc.Error (loc, msg))
  | Unknown_kernel _ -> raise Not_found

let synthesize_source ?cache ?windows config style source =
  match synthesize_source_result ?cache ?windows config style source with
  | Ok hw -> hw
  | Error e -> raise_error e

let synthesize_program ?cache ?windows config style source ~name =
  match synthesize_program_result ?cache ?windows config style source ~name with
  | Ok hw -> hw
  | Error e -> raise_error e

let compile_sw (config : Config.t) kernel =
  Vmht_lang.Typecheck.check_kernel kernel;
  (* Software threads get the same pass schedule but no unrolling: the
     scalar CPU gains nothing from wider loop bodies. *)
  let func = Vmht_ir.Lower.lower_kernel kernel in
  ignore
    (Vmht_ir.Pass_manager.optimize ~schedule:(Config.schedule config) func);
  func

let summary t =
  Printf.sprintf
    "hardware thread '%s' [%s interface]\n  datapath: %s\n  wrapper:  %s\n\
    \  total:    %s\n  %s\n  synthesized in %.1f ms"
    t.kernel.Ast.kname
    (Wrapper.style_name t.style)
    (Optypes.area_to_string t.datapath_area)
    (Optypes.area_to_string t.wrapper_area)
    (Optypes.area_to_string t.total_area)
    (Fsm.stats_to_string t.fsm.Fsm.stats)
    (t.synthesis_seconds *. 1000.)
