module Ast = Vmht_lang.Ast
module Fsm = Vmht_hls.Fsm
module Optypes = Vmht_hls.Optypes
module Verilog = Vmht_hls.Verilog

type hw_thread = {
  kernel : Ast.kernel;
  fsm : Fsm.t;
  style : Wrapper.style;
  datapath_area : Optypes.area;
  wrapper_area : Optypes.area;
  total_area : Optypes.area;
  verilog : string;
  synthesis_seconds : float;
}

let synthesize_uncached (config : Config.t) style kernel =
  Vmht_obs.Span.with_span ~cat:"flow"
    ("synth:" ^ kernel.Ast.kname)
    (fun () ->
  let started = Sys.time () in
  let fsm =
    (* Pass scheduling and FSM construction; the optimizer opens its
       own nested "passes" span inside. *)
    Vmht_obs.Span.with_span ~cat:"flow" "schedule" (fun () ->
        Fsm.synthesize ~resources:config.Config.resources
          ~unroll:config.Config.unroll
          ~pipeline:config.Config.pipeline_loops
          ~schedule:(Config.schedule config) kernel)
  in
  let wrapper_area = Wrapper.area config style in
  let verilog =
    Vmht_obs.Span.with_span ~cat:"flow" "emit" (fun () ->
        Verilog.emit_with_wrapper fsm ~wrapper_ports:(Wrapper.ports style))
  in
  let finished = Sys.time () in
  {
    kernel;
    fsm;
    style;
    datapath_area = fsm.Fsm.area;
    wrapper_area;
    total_area = Optypes.add_area fsm.Fsm.area wrapper_area;
    verilog;
    synthesis_seconds = finished -. started;
  })

(* --- typed front-end and store errors ------------------------------ *)

type store_fault =
  | Store_unwritable of string
  | Store_version_mismatch of string
  | Store_corrupt of string

type error =
  | Frontend of { loc : Vmht_lang.Loc.t; msg : string }
  | Unknown_kernel of string
  | Store_error of { path : string; fault : store_fault }

let store_fault_to_string = function
  | Store_unwritable msg -> Printf.sprintf "store unwritable: %s" msg
  | Store_version_mismatch found ->
    Printf.sprintf "store version mismatch (found %s)" found
  | Store_corrupt msg -> Printf.sprintf "corrupt store entry: %s" msg

let error_to_string = function
  | Frontend { loc; msg } ->
    Printf.sprintf "line %d, col %d: %s" loc.Vmht_lang.Loc.line
      loc.Vmht_lang.Loc.col msg
  | Unknown_kernel name -> Printf.sprintf "no kernel named '%s'" name
  | Store_error { path; fault } ->
    Printf.sprintf "%s: %s" path (store_fault_to_string fault)

(* --- content-addressed synthesis key ------------------------------- *)

(* The persistent store and the batch server address synthesis results
   by this digest: everything that determines the synthesized hardware
   — the full config fingerprint (which includes the wrapper window
   count and the pass schedule), the wrapper style, and a structural
   hash of the kernel AST — folded through MD5 into one hex name.  Two
   requests share a key iff they would synthesize identical hardware. *)
let cache_key (config : Config.t) style (kernel : Ast.kernel) =
  let kernel_digest = Digest.string (Marshal.to_string kernel []) in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            Config.fingerprint config;
            Wrapper.style_name style;
            Digest.to_hex kernel_digest;
          ]))

(* --- persistent store backend -------------------------------------- *)

(* The on-disk content-addressed store lives above this library (in
   vmht_serve); the flow only knows the shape of a backend so that a
   disk hit can be promoted into the in-memory memo under the same
   single-flight discipline as a fresh synthesis — concurrent requests
   for one key trigger exactly one disk read or one synthesis, never
   both and never several. *)
type store_backend = {
  store_load : key:string -> Ast.kernel -> hw_thread option;
      (** [None] is a miss; backends must swallow corrupt or
          version-mismatched entries and report them as misses *)
  store_save : key:string -> Ast.kernel -> hw_thread -> (unit, error) result;
}

let store_backend : store_backend option ref = ref None

let set_store b = store_backend := b

(* --- synthesis memo cache ----------------------------------------- *)

(* Synthesis is pure (modulo the wall-clock stamp), so results are
   memoized process-wide, keyed by kernel name, wrapper style and
   config fingerprint (which covers the DMA window count).  Sweeps
   that vary only runtime parameters (data size, seed, thread count)
   then synthesize each kernel once instead of once per sweep point.

   The cache is single-flight: concurrent requests for the same key
   block on the one in-progress synthesis rather than duplicating it,
   so every caller in a process sees the *same* [hw_thread] value —
   which keeps anything derived from it (including the reported
   synthesis time) identical across callers, whatever the parallel
   schedule.  Keys add the kernel name, but the stored kernel AST is
   compared structurally on hit, so a name collision degrades to a
   miss instead of returning the wrong hardware.

   When a persistent backend is installed ({!set_store}), the miss
   path consults it before synthesizing and writes fresh results back;
   both happen inside the single-flight window, so a disk entry is
   loaded (and promoted into the memo) exactly once per process. *)

type cache_stats = { cache_hits : int; cache_misses : int; cache_entries : int }

type cache_state = In_flight | Ready of Ast.kernel * hw_thread

type cache_slot = { mutable state : cache_state }

let cache_mutex = Mutex.create ()

let cache_cond = Condition.create ()

let cache_table : (string * string * string, cache_slot) Hashtbl.t =
  Hashtbl.create 64

let cache_hits = Atomic.make 0

let cache_misses = Atomic.make 0

let cache_stats () =
  Mutex.lock cache_mutex;
  let entries = Hashtbl.length cache_table in
  Mutex.unlock cache_mutex;
  {
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses;
    cache_entries = entries;
  }

let reset_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache_table;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0;
  Mutex.unlock cache_mutex

let sync_cache_metrics m =
  let s = cache_stats () in
  Vmht_obs.Metrics.set_counter
    (Vmht_obs.Metrics.counter m "flow.synth_cache_hits")
    s.cache_hits;
  Vmht_obs.Metrics.set_counter
    (Vmht_obs.Metrics.counter m "flow.synth_cache_misses")
    s.cache_misses;
  Vmht_obs.Metrics.set_counter
    (Vmht_obs.Metrics.counter m "flow.synth_cache_entries")
    s.cache_entries

(* Process-wide per-pass totals (every synthesis since startup), for
   the bench manifest's pass statistics — same pull model as the cache
   counters above. *)
let sync_pass_metrics m =
  List.iter
    (fun (pass, runs, rewrites) ->
      Vmht_obs.Metrics.set_counter
        (Vmht_obs.Metrics.counter m (Printf.sprintf "pass.%s.runs" pass))
        runs;
      Vmht_obs.Metrics.set_counter
        (Vmht_obs.Metrics.counter m (Printf.sprintf "pass.%s.rewrites" pass))
        rewrites)
    (Vmht_ir.Pass_manager.totals ())

(* The memo-miss producer: consult the persistent backend (if any),
   fall back to a fresh synthesis, write fresh results through.  A
   failed write-back still returns the synthesized hardware alongside
   the error — the memo keeps the result either way, so one unwritable
   directory costs one error per key, not the synthesis work. *)
let produce config style kernel =
  match !store_backend with
  | None -> (synthesize_uncached config style kernel, None)
  | Some b -> (
    let key = cache_key config style kernel in
    match b.store_load ~key kernel with
    | Some hw -> (hw, None)
    | None ->
      let hw = synthesize_uncached config style kernel in
      (match b.store_save ~key kernel hw with
       | Ok () -> (hw, None)
       | Error e -> (hw, Some e)))

let synthesize_cached (config : Config.t) style kernel :
    (hw_thread, error) result =
  let key =
    (kernel.Ast.kname, Wrapper.style_name style, Config.fingerprint config)
  in
  let rec acquire () =
    (* Called with [cache_mutex] held; returns with it released. *)
    match Hashtbl.find_opt cache_table key with
    | Some { state = Ready (k, hw) } when k = kernel ->
      Mutex.unlock cache_mutex;
      Atomic.incr cache_hits;
      Ok hw
    | Some ({ state = In_flight } as _slot) ->
      Condition.wait cache_cond cache_mutex;
      acquire ()
    | Some { state = Ready _ } (* same name, different kernel *) | None ->
      let slot = { state = In_flight } in
      Hashtbl.replace cache_table key slot;
      Mutex.unlock cache_mutex;
      Atomic.incr cache_misses;
      let hw, save_err =
        try produce config style kernel
        with e ->
          Mutex.lock cache_mutex;
          Hashtbl.remove cache_table key;
          Condition.broadcast cache_cond;
          Mutex.unlock cache_mutex;
          raise e
      in
      Mutex.lock cache_mutex;
      slot.state <- Ready (kernel, hw);
      Condition.broadcast cache_cond;
      Mutex.unlock cache_mutex;
      (match save_err with None -> Ok hw | Some e -> Error e)
  in
  Mutex.lock cache_mutex;
  acquire ()

(* --- the consolidated request API ---------------------------------- *)

module Request = struct
  type payload =
    | Kernel of Ast.kernel
    | Source of string
    | Program of { source : string; kname : string }

  type t = {
    payload : payload;
    config : Config.t;
    style : Wrapper.style;
    cache : bool;
  }

  let make ?(config = Config.default) ?(style = Wrapper.Vm_iface)
      ?(cache = true) payload =
    { payload; config; style; cache }

  let of_kernel ?config ?style ?cache kernel =
    make ?config ?style ?cache (Kernel kernel)

  let of_source ?config ?style ?cache source =
    make ?config ?style ?cache (Source source)

  let of_program ?config ?style ?cache ~name source =
    make ?config ?style ?cache (Program { source; kname = name })
end

(* The front end reports lexical/syntactic/type/inlining problems by
   raising [Loc.Error]; this is the one place that boundary is crossed
   into typed results, so callers above (CLI, eval, serve) never have
   to know which exceptions the language layer uses. *)
let capture_frontend f =
  match f () with
  | v -> Ok v
  | exception Vmht_lang.Loc.Error (loc, msg) -> Error (Frontend { loc; msg })

let frontend_program source =
  capture_frontend (fun () ->
      Vmht_obs.Span.with_span ~cat:"flow" "parse" (fun () ->
          let program = Vmht_lang.Parser.parse_program source in
          Vmht_lang.Typecheck.check_program program;
          Vmht_lang.Inline.program program))

let run (r : Request.t) : (hw_thread, error) result =
  (* Typechecking happens inside HLS synthesis for kernels that arrive
     as ASTs, so the capture has to surround synthesis too — [run] is
     total over front-end problems whatever the payload shape. *)
  let with_kernel kernel =
    if r.Request.cache then
      match synthesize_cached r.Request.config r.Request.style kernel with
      | result -> result
      | exception Vmht_lang.Loc.Error (loc, msg) ->
        Error (Frontend { loc; msg })
    else
      capture_frontend (fun () ->
          synthesize_uncached r.Request.config r.Request.style kernel)
  in
  match r.Request.payload with
  | Request.Kernel kernel -> with_kernel kernel
  | Request.Source source ->
    Result.bind
      (capture_frontend (fun () ->
           Vmht_obs.Span.with_span ~cat:"flow" "parse" (fun () ->
               Vmht_lang.Parser.parse_kernel source)))
      with_kernel
  | Request.Program { source; kname } ->
    Result.bind (frontend_program source) (fun program ->
        match Vmht_lang.Ast.find_kernel program kname with
        | Some kernel -> with_kernel kernel
        | None -> Error (Unknown_kernel kname))

let raise_error = function
  | Frontend { loc; msg } -> raise (Vmht_lang.Loc.Error (loc, msg))
  | Unknown_kernel _ -> raise Not_found
  | Store_error _ as e -> raise (Sys_error (error_to_string e))

let run_exn r = match run r with Ok hw -> hw | Error e -> raise_error e

let compile_sw (config : Config.t) kernel =
  Vmht_lang.Typecheck.check_kernel kernel;
  (* Software threads get the same pass schedule but no unrolling: the
     scalar CPU gains nothing from wider loop bodies. *)
  let func = Vmht_ir.Lower.lower_kernel kernel in
  ignore
    (Vmht_ir.Pass_manager.optimize ~schedule:(Config.schedule config) func);
  func

let summary t =
  Printf.sprintf
    "hardware thread '%s' [%s interface]\n  datapath: %s\n  wrapper:  %s\n\
    \  total:    %s\n  %s\n  synthesized in %.1f ms"
    t.kernel.Ast.kname
    (Wrapper.style_name t.style)
    (Optypes.area_to_string t.datapath_area)
    (Optypes.area_to_string t.wrapper_area)
    (Optypes.area_to_string t.total_area)
    (Fsm.stats_to_string t.fsm.Fsm.stats)
    (t.synthesis_seconds *. 1000.)
