module Ast = Vmht_lang.Ast
module Fsm = Vmht_hls.Fsm
module Optypes = Vmht_hls.Optypes
module Verilog = Vmht_hls.Verilog

type hw_thread = {
  kernel : Ast.kernel;
  fsm : Fsm.t;
  style : Wrapper.style;
  datapath_area : Optypes.area;
  wrapper_area : Optypes.area;
  total_area : Optypes.area;
  verilog : string;
  synthesis_seconds : float;
}

let synthesize ?(windows = 3) (config : Config.t) style kernel =
  let started = Sys.time () in
  let fsm =
    Fsm.synthesize ~resources:config.Config.resources
      ~unroll:config.Config.unroll
      ~pipeline:config.Config.pipeline_loops kernel
  in
  let wrapper_area = Wrapper.area config style ~windows in
  let verilog =
    Verilog.emit_with_wrapper fsm ~wrapper_ports:(Wrapper.ports style)
  in
  let finished = Sys.time () in
  {
    kernel;
    fsm;
    style;
    datapath_area = fsm.Fsm.area;
    wrapper_area;
    total_area = Optypes.add_area fsm.Fsm.area wrapper_area;
    verilog;
    synthesis_seconds = finished -. started;
  }

let synthesize_source ?windows config style source =
  synthesize ?windows config style (Vmht_lang.Parser.parse_kernel source)

let synthesize_program ?windows config style source ~name =
  let program = Vmht_lang.Parser.parse_program source in
  Vmht_lang.Typecheck.check_program program;
  let program = Vmht_lang.Inline.program program in
  match Vmht_lang.Ast.find_kernel program name with
  | Some kernel -> synthesize ?windows config style kernel
  | None -> raise Not_found

let compile_sw (config : Config.t) kernel =
  Vmht_lang.Typecheck.check_kernel kernel;
  (* Software threads get the same optimizer but no unrolling: the
     scalar CPU gains nothing from wider loop bodies. *)
  ignore config;
  let func = Vmht_ir.Lower.lower_kernel kernel in
  ignore (Vmht_ir.Passes.optimize func);
  func

let summary t =
  Printf.sprintf
    "hardware thread '%s' [%s interface]\n  datapath: %s\n  wrapper:  %s\n\
    \  total:    %s\n  %s\n  synthesized in %.1f ms"
    t.kernel.Ast.kname
    (Wrapper.style_name t.style)
    (Optypes.area_to_string t.datapath_area)
    (Optypes.area_to_string t.wrapper_area)
    (Optypes.area_to_string t.total_area)
    (Fsm.stats_to_string t.fsm.Fsm.stats)
    (t.synthesis_seconds *. 1000.)
