(** System generation: composing synthesized hardware threads into a
    full SoC design against a concrete device budget.

    This is the "system level" of the flow: given wrapped hardware
    threads (and how many instances of each), it lays out the MMIO
    address map, adds the static infrastructure (interconnect, host
    interface, reset/clock), sums resources against a device, and
    emits a top-level RTL stub that instantiates everything. *)

type device = {
  device_name : string;
  lut : int;
  ff : int;
  dsp : int;
  bram : int; (** 18 Kb halves, as the area model counts them *)
}

val zynq_7020 : device
(** 53,200 LUT / 106,400 FF / 220 DSP / 280 BRAM halves. *)

val zynq_7045 : device
(** 218,600 LUT / 437,200 FF / 900 DSP / 1,090 BRAM halves. *)

type placement = {
  thread : Flow.hw_thread;
  instances : int;
  mmio_base : int; (** control registers of instance 0 *)
}

type design = {
  device : device;
  placements : placement list;
  static_area : Vmht_hls.Optypes.area;
  total_area : Vmht_hls.Optypes.area;
  fits : bool;
  utilization : (string * float) list; (** resource -> fraction used *)
  top_verilog : string;
}

val static_overhead : Vmht_hls.Optypes.area
(** Bus interconnect, host bridge, clocking — paid once per design. *)

val compose : ?device:device -> (Flow.hw_thread * int) list -> design
(** Lay out [(thread, instance-count)] pairs into a design.  Never
    raises on over-budget; [fits]/[utilization] report it. *)

val max_instances : ?device:device -> Flow.hw_thread -> int
(** How many instances of one thread the device can host beside the
    static infrastructure — the thread-density metric of Table 6. *)

val summary : design -> string
