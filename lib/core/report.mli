(** Consolidated post-run reporting: one place that gathers what every
    component of the SoC observed during an execution and renders it
    for humans (the CLI's [--stats] view) or for the experiment
    harness. *)

type t = {
  workload : string;
  mode : string;
  size : int;
  result : Launch.result;
  bus : Vmht_mem.Bus.stats;
  dram_row_hit_rate : float;
  cpu : Vmht_cpu.Cpu.stats;
  cpu_cache : Vmht_mem.Cache.stats;
  mapped_pages : int;
}

val gather :
  Soc.t -> workload:string -> mode:string -> size:int -> Launch.result -> t
(** Snapshot all component statistics after a run on [soc]. *)

val to_string : t -> string
(** Multi-section human-readable rendering. *)
