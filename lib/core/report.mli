(** Consolidated post-run reporting: one place that gathers what every
    component of the SoC observed during an execution and renders it
    for humans (the CLI's [--stats] view) or for the experiment
    harness. *)

type t = {
  workload : string;
  mode : string;
  size : int;
  result : Launch.result;
  bus : Vmht_mem.Bus.stats;
  dram_row_hit_rate : float;
  cpu : Vmht_cpu.Cpu.stats;
  cpu_cache : Vmht_mem.Cache.stats;
  mapped_pages : int;
  metrics : Vmht_obs.Metrics.snapshot;
      (** uniform ["component.metric"] view; counters synced at gather *)
}

val gather :
  Soc.t -> workload:string -> mode:string -> size:int -> Launch.result -> t
(** Snapshot all component statistics after a run on [soc] (calls
    {!Soc.sync_metrics} first, so the metrics snapshot is coherent). *)

val to_string : t -> string
(** Multi-section human-readable rendering, ending with the run's
    cycle-attribution waterfall. *)

val to_json : t -> Vmht_obs.Json.t
(** Machine-readable report: run identity, phases, attribution and the
    full metrics snapshot (the CLI's [--metrics-json] payload). *)
