type t = {
  phys_bytes : int;
  page_shift : int;
  va_bits : int;
  dram : Vmht_mem.Dram.config;
  bus_arbitration_cycles : int;
  cache : Vmht_mem.Cache.config;
  resources : Vmht_hls.Schedule.resources;
  unroll : int;
  pipeline_loops : bool;
  accel_mem_ports : int;
  mmu : Vmht_vm.Mmu.config;
  accel_stream_buffer : Vmht_mem.Cache.config;
  scratchpad_words : int;
  dma_setup_cycles : int;
  dma_burst_words : int;
  pin_cycles_per_page : int;
  cache_maintenance_cycles : int;
  seed : int;
}

let default =
  {
    phys_bytes = 64 * 1024 * 1024;
    page_shift = 12;
    va_bits = 26;
    dram = Vmht_mem.Dram.default_config;
    bus_arbitration_cycles = 2;
    cache = Vmht_mem.Cache.default_config;
    resources =
      { Vmht_hls.Schedule.default_resources with Vmht_hls.Schedule.mem_ports = 2 };
    unroll = 1;
    pipeline_loops = false;
    accel_mem_ports = 2;
    mmu = Vmht_vm.Mmu.default_config;
    (* The VM wrapper's stream buffer: a small write-back cache that
       turns streaming word accesses into bus bursts.  Copy-based
       wrappers get the same effect from their scratchpad. *)
    accel_stream_buffer =
      {
        Vmht_mem.Cache.size_bytes = 4096;
        line_bytes = 32;
        ways = 4;
        hit_latency = 1;
      };
    scratchpad_words = 1 lsl 16; (* 512 KiB window budget (Zynq-class) *)
    dma_setup_cycles = 120;
    dma_burst_words = 64;
    pin_cycles_per_page = 40;
    cache_maintenance_cycles = 64;
    seed = 1;
  }

let with_tlb_entries t entries =
  let mmu =
    {
      t.mmu with
      Vmht_vm.Mmu.tlb = { t.mmu.Vmht_vm.Mmu.tlb with Vmht_vm.Tlb.entries };
    }
  in
  { t with mmu }

let with_page_shift t page_shift = { t with page_shift }

let with_unroll t unroll = { t with unroll }

let with_pipelining t pipeline_loops = { t with pipeline_loops }

let to_string t =
  Printf.sprintf
    "page=%dB tlb=%d entries (hw_walk=%b) cache=%dB unroll=%d ports=%d \
     scratchpad=%d words"
    (1 lsl t.page_shift) t.mmu.Vmht_vm.Mmu.tlb.Vmht_vm.Tlb.entries
    t.mmu.Vmht_vm.Mmu.hw_walk t.cache.Vmht_mem.Cache.size_bytes t.unroll
    t.accel_mem_ports t.scratchpad_words
