(* Which executor runs the synthesized hardware thread: the model-level
   FSM executor, or the RTL evaluator running the emitted Verilog text
   itself.  Both sit on the same lib/mem + lib/vm stack; the backends
   are contractually cycle- and result-identical, and the rtl1
   experiment enforces it. *)
type backend = Model | Rtl

type t = {
  phys_bytes : int;
  page_shift : int;
  va_bits : int;
  dram : Vmht_mem.Dram.config;
  bus_arbitration_cycles : int;
  cache : Vmht_mem.Cache.config;
  resources : Vmht_hls.Schedule.resources;
  unroll : int;
  pipeline_loops : bool;
  accel_mem_ports : int;
  mmu : Vmht_vm.Mmu.config;
  tlb2 : Vmht_vm.Tlb2.config;
  accel_stream_buffer : Vmht_mem.Cache.config;
  scratchpad_words : int;
  dma_setup_cycles : int;
  dma_burst_words : int;
  pin_cycles_per_page : int;
  wrapper_windows : int;
  opt_level : int;
  passes : string list option;
  cache_maintenance_cycles : int;
  fault : Vmht_fault.Plan.t;
  seed : int;
  fastpath : bool;
  backend : backend;
}

let default =
  {
    phys_bytes = 64 * 1024 * 1024;
    page_shift = 12;
    va_bits = 26;
    dram = Vmht_mem.Dram.default_config;
    bus_arbitration_cycles = 2;
    cache = Vmht_mem.Cache.default_config;
    resources =
      {
        Vmht_hls.Schedule.default_resources with
        Vmht_hls.Schedule.mem = Vmht_hls.Schedule.flat_mem 2;
      };
    unroll = 1;
    pipeline_loops = false;
    accel_mem_ports = 2;
    mmu = Vmht_vm.Mmu.default_config;
    tlb2 = Vmht_vm.Tlb2.default_config;
    (* The VM wrapper's stream buffer: a small write-back cache that
       turns streaming word accesses into bus bursts.  Copy-based
       wrappers get the same effect from their scratchpad. *)
    accel_stream_buffer =
      {
        Vmht_mem.Cache.size_bytes = 4096;
        line_bytes = 32;
        ways = 4;
        hit_latency = 1;
      };
    scratchpad_words = 1 lsl 16; (* 512 KiB window budget (Zynq-class) *)
    dma_setup_cycles = 120;
    dma_burst_words = 64;
    pin_cycles_per_page = 40;
    (* Address-window comparator bank of the DMA wrapper.  Lives in
       the config (not as a per-call optional) so the synthesis cache
       key has a single source of truth. *)
    wrapper_windows = 3;
    opt_level = 2;
    passes = None;
    cache_maintenance_cycles = 64;
    fault = Vmht_fault.Plan.none;
    seed = 1;
    (* Trace-compiled simulator fast path (single-runnable wait
       batching, steady-state accelerator traces, memoized
       translation).  Observationally identical — cycle counts and
       outputs do not depend on it — so it defaults on; --no-fastpath
       is the escape hatch and the abl7 ablation proves the claim. *)
    fastpath = true;
    backend = Model;
  }

let with_tlb_entries t entries =
  let mmu =
    {
      t.mmu with
      Vmht_vm.Mmu.tlb = { t.mmu.Vmht_vm.Mmu.tlb with Vmht_vm.Tlb.entries };
    }
  in
  { t with mmu }

let with_tlb2 t tlb2 = { t with tlb2 }

let with_walk_cache t entries =
  { t with mmu = { t.mmu with Vmht_vm.Mmu.walk_cache_entries = entries } }

let with_page_shift t page_shift = { t with page_shift }

let with_unroll t unroll = { t with unroll }

let with_pipelining t pipeline_loops = { t with pipeline_loops }

(* Re-bank the scratchpad, keeping per-bank porting: [n] word-interleaved
   banks, each with the current ports-per-bank; the outstanding-miss
   limit scales with the total port count.  [with_banks t 1] is the
   default flat memory (identical fingerprint). *)
let with_banks t banks =
  let m = t.resources.Vmht_hls.Schedule.mem in
  let ppb = m.Vmht_hls.Schedule.ports_per_bank in
  let mem =
    {
      m with
      Vmht_hls.Schedule.banks;
      Vmht_hls.Schedule.miss_limit = banks * ppb;
    }
  in
  { t with resources = { t.resources with Vmht_hls.Schedule.mem } }

(* Simulator-side width of the accelerator's memory interface: wide
   enough for both the wrapper's outstanding-access budget and the peak
   issue width the schedule was arbitrated for. *)
let accel_width t =
  max t.accel_mem_ports
    (Vmht_hls.Schedule.mem_total_ports t.resources.Vmht_hls.Schedule.mem)

let with_fault t fault = { t with fault }

let with_seed t seed = { t with seed }

let with_opt_level t opt_level = { t with opt_level }

let with_windows t wrapper_windows = { t with wrapper_windows }

let with_fastpath t fastpath = { t with fastpath }

let with_backend t backend = { t with backend }

let with_passes t passes = { t with passes }

(* The active schedule: an explicit pass list overrides the preset.
   Unknown pass names are a configuration error, reported eagerly. *)
let schedule t =
  match t.passes with
  | None -> Vmht_ir.Pass_manager.of_opt_level t.opt_level
  | Some names -> (
    match Vmht_ir.Pass_manager.of_names names with
    | Ok s -> s
    | Error msg -> invalid_arg ("Config.schedule: " ^ msg))

(* Every field, spelled out: the fingerprint keys the synthesis cache,
   so forgetting a field here would let two configs that synthesize
   differently share a cache slot.  Enumerating all of them (even the
   purely runtime ones like DRAM timings) trades a few spurious cache
   misses for immunity to that bug class. *)
let fingerprint (t : t) =
  let b = Buffer.create 160 in
  let i v = Buffer.add_string b (string_of_int v); Buffer.add_char b ';' in
  let f v = Buffer.add_string b (string_of_bool v); Buffer.add_char b ';' in
  i t.phys_bytes;
  i t.page_shift;
  i t.va_bits;
  (let d = t.dram in
   i d.Vmht_mem.Dram.t_cas;
   i d.Vmht_mem.Dram.t_rcd;
   i d.Vmht_mem.Dram.t_rp;
   i d.Vmht_mem.Dram.row_bytes;
   i d.Vmht_mem.Dram.banks);
  i t.bus_arbitration_cycles;
  let cache (c : Vmht_mem.Cache.config) =
    i c.Vmht_mem.Cache.size_bytes;
    i c.Vmht_mem.Cache.line_bytes;
    i c.Vmht_mem.Cache.ways;
    i c.Vmht_mem.Cache.hit_latency
  in
  cache t.cache;
  (let r = t.resources in
   i r.Vmht_hls.Schedule.alu;
   i r.Vmht_hls.Schedule.cmp;
   i r.Vmht_hls.Schedule.mul;
   i r.Vmht_hls.Schedule.div;
   i r.Vmht_hls.Schedule.shift;
   (let m = r.Vmht_hls.Schedule.mem in
    i m.Vmht_hls.Schedule.banks;
    i m.Vmht_hls.Schedule.ports_per_bank;
    i m.Vmht_hls.Schedule.interleave_shift;
    i m.Vmht_hls.Schedule.miss_limit));
  i t.unroll;
  f t.pipeline_loops;
  i t.accel_mem_ports;
  (let m = t.mmu in
   i m.Vmht_vm.Mmu.tlb.Vmht_vm.Tlb.entries;
   i m.Vmht_vm.Mmu.tlb.Vmht_vm.Tlb.assoc;
   Buffer.add_string b
     (match m.Vmht_vm.Mmu.tlb.Vmht_vm.Tlb.policy with
      | Vmht_vm.Tlb.Lru -> "lru;"
      | Vmht_vm.Tlb.Fifo -> "fifo;");
   f m.Vmht_vm.Mmu.hw_walk;
   i m.Vmht_vm.Mmu.tlb_hit_cycles;
   i m.Vmht_vm.Mmu.sw_refill_penalty;
   i m.Vmht_vm.Mmu.fault_penalty;
   i m.Vmht_vm.Mmu.walk_cache_entries);
  (let l2 = t.tlb2 in
   f l2.Vmht_vm.Tlb2.enabled;
   i l2.Vmht_vm.Tlb2.entries;
   i l2.Vmht_vm.Tlb2.assoc;
   Buffer.add_string b
     (match l2.Vmht_vm.Tlb2.policy with
      | Vmht_vm.Tlb.Lru -> "lru;"
      | Vmht_vm.Tlb.Fifo -> "fifo;");
   i l2.Vmht_vm.Tlb2.hit_cycles);
  cache t.accel_stream_buffer;
  i t.scratchpad_words;
  i t.dma_setup_cycles;
  i t.dma_burst_words;
  i t.pin_cycles_per_page;
  i t.wrapper_windows;
  i t.cache_maintenance_cycles;
  Buffer.add_string b (Vmht_fault.Plan.fingerprint t.fault);
  (* The pass schedule changes the synthesized datapath, so it must key
     the cache: [-O1] and [-O2] results can never be conflated. *)
  i t.opt_level;
  Buffer.add_string b
    (match t.passes with
     | None -> "preset;"
     | Some names -> "passes:" ^ String.concat "," names ^ ";");
  i t.seed;
  (* Purely a runtime toggle, but the all-fields policy wins: a
     spurious cache miss is cheaper than a forgotten field. *)
  f t.fastpath;
  Buffer.add_string b
    (match t.backend with Model -> "model;" | Rtl -> "rtl;");
  Buffer.contents b

let to_string t =
  Printf.sprintf
    "page=%dB tlb=%d entries (hw_walk=%b) cache=%dB unroll=%d ports=%d \
     scratchpad=%d words"
    (1 lsl t.page_shift) t.mmu.Vmht_vm.Mmu.tlb.Vmht_vm.Tlb.entries
    t.mmu.Vmht_vm.Mmu.hw_walk t.cache.Vmht_mem.Cache.size_bytes t.unroll
    t.accel_mem_ports t.scratchpad_words
