(** The end-to-end synthesis flow for one hardware thread:
    parse -> typecheck -> unroll -> lower -> optimize -> schedule ->
    bind -> wrapper synthesis -> RTL emission -> area roll-up. *)

type hw_thread = {
  kernel : Vmht_lang.Ast.kernel;
  fsm : Vmht_hls.Fsm.t;
  style : Wrapper.style;
  datapath_area : Vmht_hls.Optypes.area;
  wrapper_area : Vmht_hls.Optypes.area;
  total_area : Vmht_hls.Optypes.area;
  verilog : string;
  synthesis_seconds : float; (** wall-clock time this flow took *)
}

val synthesize :
  ?windows:int -> Config.t -> Wrapper.style -> Vmht_lang.Ast.kernel -> hw_thread
(** [windows] (default 3) sizes the DMA wrapper's address-window
    comparator bank; ignored for the VM style. *)

val synthesize_source :
  ?windows:int -> Config.t -> Wrapper.style -> string -> hw_thread
(** Convenience: parse a single-kernel source string first.  Raises
    {!Vmht_lang.Loc.Error} on bad input. *)

val synthesize_program :
  ?windows:int ->
  Config.t ->
  Wrapper.style ->
  string ->
  name:string ->
  hw_thread
(** Parse a multi-kernel source, typecheck it as a program (kernel
    calls allowed), inline every call, and synthesize the kernel
    [name].  Raises [Not_found] if no kernel has that name. *)

val compile_sw : Config.t -> Vmht_lang.Ast.kernel -> Vmht_ir.Ir.func
(** The software path: the same front end and optimizer, no HLS.  Used
    for software-thread execution and as the Table 5 baseline. *)

val summary : hw_thread -> string
