(** The end-to-end synthesis flow for one hardware thread:
    parse -> typecheck -> unroll -> lower -> optimize -> schedule ->
    bind -> wrapper synthesis -> RTL emission -> area roll-up. *)

type hw_thread = {
  kernel : Vmht_lang.Ast.kernel;
  fsm : Vmht_hls.Fsm.t;
  style : Wrapper.style;
  datapath_area : Vmht_hls.Optypes.area;
  wrapper_area : Vmht_hls.Optypes.area;
  total_area : Vmht_hls.Optypes.area;
  verilog : string;
  synthesis_seconds : float; (** wall-clock time this flow took *)
}

val synthesize :
  ?cache:bool ->
  ?windows:int ->
  Config.t ->
  Wrapper.style ->
  Vmht_lang.Ast.kernel ->
  hw_thread
(** [windows] (default 3) sizes the DMA wrapper's address-window
    comparator bank; ignored for the VM style.

    Results are memoized process-wide (see {!cache_stats}): a repeat
    call with a structurally equal kernel, the same style, an equal
    {!Config.fingerprint} and the same [windows] returns the cached
    [hw_thread] (the very same value, so its [synthesis_seconds] is
    the original measurement).  The cache is single-flight and safe
    under concurrent callers on multiple domains.  Pass [~cache:false]
    to force a fresh synthesis — benchmarks that *measure* synthesis
    must, or they time a table lookup. *)

(** {2 Typed front-end errors}

    Everything the flow can reject about user *input* is one of these —
    the language layer's exceptions stop at this boundary, so callers
    (the CLIs, the eval harness) can map errors to messages and exit
    codes without knowing which exceptions the front end uses
    internally. *)

type error =
  | Frontend of { loc : Vmht_lang.Loc.t; msg : string }
      (** lexical / syntactic / type / inlining problem at [loc] *)
  | Unknown_kernel of string
      (** the program has no kernel with the requested name *)

val error_to_string : error -> string

val frontend_program : string -> (Vmht_lang.Ast.program, error) result
(** Parse, typecheck and inline a multi-kernel source — the front-end
    half of {!synthesize_program_result}, for callers that stop before
    synthesis (e.g. [vmht compile]). *)

val synthesize_source_result :
  ?cache:bool ->
  ?windows:int ->
  Config.t ->
  Wrapper.style ->
  string ->
  (hw_thread, error) result
(** Parse a single-kernel source string, then {!synthesize}. *)

val synthesize_program_result :
  ?cache:bool ->
  ?windows:int ->
  Config.t ->
  Wrapper.style ->
  string ->
  name:string ->
  (hw_thread, error) result
(** Parse a multi-kernel source, typecheck it as a program (kernel
    calls allowed), inline every call, and synthesize the kernel
    [name]. *)

val synthesize_source :
  ?cache:bool -> ?windows:int -> Config.t -> Wrapper.style -> string -> hw_thread
(** Raising wrapper over {!synthesize_source_result}: raises
    {!Vmht_lang.Loc.Error} on bad input. *)

val synthesize_program :
  ?cache:bool ->
  ?windows:int ->
  Config.t ->
  Wrapper.style ->
  string ->
  name:string ->
  hw_thread
(** Raising wrapper over {!synthesize_program_result}: raises
    {!Vmht_lang.Loc.Error} on front-end errors and [Not_found] if no
    kernel has that name. *)

val compile_sw : Config.t -> Vmht_lang.Ast.kernel -> Vmht_ir.Ir.func
(** The software path: the same front end and optimizer, no HLS.  Used
    for software-thread execution and as the Table 5 baseline. *)

val summary : hw_thread -> string

(** {2 Synthesis cache} *)

type cache_stats = {
  cache_hits : int;  (** calls answered from the memo table *)
  cache_misses : int;  (** calls that ran the full flow *)
  cache_entries : int;  (** distinct (kernel, style, config) keys held *)
}

val cache_stats : unit -> cache_stats

val reset_cache : unit -> unit
(** Drop every entry and zero the counters (tests, micro-benchmarks). *)

val sync_cache_metrics : Vmht_obs.Metrics.t -> unit
(** Publish the cache counters into a metrics registry as
    ["flow.synth_cache_hits"/"flow.synth_cache_misses"/
    "flow.synth_cache_entries"]. *)

val sync_pass_metrics : Vmht_obs.Metrics.t -> unit
(** Publish the process-wide optimizer totals
    ({!Vmht_ir.Pass_manager.totals}) as ["pass.<name>.runs"] and
    ["pass.<name>.rewrites"] counters. *)
