(** The end-to-end synthesis flow for one hardware thread:
    parse -> typecheck -> unroll -> lower -> optimize -> schedule ->
    bind -> wrapper synthesis -> RTL emission -> area roll-up.

    The front door is {!Request.t} + {!run}: one record naming what to
    synthesize (an AST, a single-kernel source, or a kernel of a
    multi-kernel program), under which {!Config.t} and wrapper style,
    and whether the process-wide memo may answer. *)

type hw_thread = {
  kernel : Vmht_lang.Ast.kernel;
  fsm : Vmht_hls.Fsm.t;
  style : Wrapper.style;
  datapath_area : Vmht_hls.Optypes.area;
  wrapper_area : Vmht_hls.Optypes.area;
  total_area : Vmht_hls.Optypes.area;
  verilog : string;
  synthesis_seconds : float; (** wall-clock time this flow took *)
}

(** {2 Typed errors}

    Everything the flow can reject — bad user input or a persistent
    store that cannot hold up its end — is one of these; the language
    layer's exceptions stop at this boundary, so callers (the CLIs,
    the eval harness, the batch server) can map errors to messages and
    exit codes without knowing which exceptions the layers below use
    internally. *)

type store_fault =
  | Store_unwritable of string  (** store dir cannot be created/written *)
  | Store_version_mismatch of string
      (** entry written by an incompatible format version (carried) *)
  | Store_corrupt of string  (** truncated / checksum-failed entry *)

type error =
  | Frontend of { loc : Vmht_lang.Loc.t; msg : string }
      (** lexical / syntactic / type / inlining problem at [loc] *)
  | Unknown_kernel of string
      (** the program has no kernel with the requested name *)
  | Store_error of { path : string; fault : store_fault }
      (** the persistent synthesis store failed; only [Store_unwritable]
          ever surfaces from {!run} — mismatched or corrupt entries are
          re-synthesized silently *)

val error_to_string : error -> string

val store_fault_to_string : store_fault -> string

(** {2 Requests} *)

module Request : sig
  type payload =
    | Kernel of Vmht_lang.Ast.kernel  (** already parsed and checked *)
    | Source of string  (** single-kernel source text *)
    | Program of { source : string; kname : string }
        (** multi-kernel source; synthesize kernel [kname] after
            whole-program typecheck and inlining *)

  type t = {
    payload : payload;
    config : Config.t;
    style : Wrapper.style;
    cache : bool;
        (** consult/fill the memo (and any installed persistent
            store); [false] forces a fresh synthesis — benchmarks that
            *measure* synthesis must, or they time a table lookup *)
  }

  val make :
    ?config:Config.t -> ?style:Wrapper.style -> ?cache:bool -> payload -> t
  (** Defaults: {!Config.default}, [Vm_iface], [cache = true]. *)

  val of_kernel :
    ?config:Config.t ->
    ?style:Wrapper.style ->
    ?cache:bool ->
    Vmht_lang.Ast.kernel ->
    t

  val of_source :
    ?config:Config.t -> ?style:Wrapper.style -> ?cache:bool -> string -> t

  val of_program :
    ?config:Config.t ->
    ?style:Wrapper.style ->
    ?cache:bool ->
    name:string ->
    string ->
    t
end

val run : Request.t -> (hw_thread, error) result
(** Execute a synthesis request.  Results are memoized process-wide
    (see {!cache_stats}): a repeat request with a structurally equal
    kernel, the same style and an equal {!Config.fingerprint} returns
    the cached [hw_thread] (the very same value, so its
    [synthesis_seconds] is the original measurement).  The memo is
    single-flight and safe under concurrent callers on multiple
    domains; a persistent backend installed with {!set_store} is
    consulted and written through inside the same single-flight
    window. *)

val run_exn : Request.t -> hw_thread
(** {!run}, raising: {!Vmht_lang.Loc.Error} on front-end errors,
    [Not_found] on unknown kernels, [Sys_error] on store faults. *)

val cache_key : Config.t -> Wrapper.style -> Vmht_lang.Ast.kernel -> string
(** The content-addressed synthesis key: a hex digest over the full
    config fingerprint, the wrapper style, and a structural hash of
    the kernel AST.  Two requests share a key iff they synthesize
    identical hardware; the persistent store and the batch server both
    address results by it. *)

val frontend_program : string -> (Vmht_lang.Ast.program, error) result
(** Parse, typecheck and inline a multi-kernel source — the front-end
    half of a [Program] request, for callers that stop before
    synthesis (e.g. [vmht compile]). *)

(** {2 Persistent store backend}

    The on-disk content-addressed store lives in [vmht_serve]; the
    flow sees it only through this record so a disk hit is promoted
    into the in-memory memo under the same single-flight discipline as
    a fresh synthesis. *)

type store_backend = {
  store_load : key:string -> Vmht_lang.Ast.kernel -> hw_thread option;
      (** [None] is a miss; backends must swallow corrupt or
          version-mismatched entries and report them as misses *)
  store_save :
    key:string -> Vmht_lang.Ast.kernel -> hw_thread -> (unit, error) result;
}

val set_store : store_backend option -> unit
(** Install (or clear) the process-wide persistent backend.  On a memo
    miss the flow first tries [store_load]; on a fresh synthesis it
    calls [store_save] and surfaces a save failure as
    [Error (Store_error _)] from {!run} — the memo keeps the result
    either way. *)

val compile_sw : Config.t -> Vmht_lang.Ast.kernel -> Vmht_ir.Ir.func
(** The software path: the same front end and optimizer, no HLS.  Used
    for software-thread execution and as the Table 5 baseline. *)

val summary : hw_thread -> string

(** {2 Synthesis cache} *)

type cache_stats = {
  cache_hits : int;  (** calls answered from the memo table *)
  cache_misses : int;  (** calls that ran the full flow *)
  cache_entries : int;  (** distinct (kernel, style, config) keys held *)
}

val cache_stats : unit -> cache_stats

val reset_cache : unit -> unit
(** Drop every entry and zero the counters (tests, micro-benchmarks). *)

val sync_cache_metrics : Vmht_obs.Metrics.t -> unit
(** Publish the cache counters into a metrics registry as
    ["flow.synth_cache_hits"/"flow.synth_cache_misses"/
    "flow.synth_cache_entries"]. *)

val sync_pass_metrics : Vmht_obs.Metrics.t -> unit
(** Publish the process-wide optimizer totals
    ({!Vmht_ir.Pass_manager.totals}) as ["pass.<name>.runs"] and
    ["pass.<name>.rewrites"] counters. *)
