module Bus = Vmht_mem.Bus
module Cache = Vmht_mem.Cache
module Cpu = Vmht_cpu.Cpu
module Mmu = Vmht_vm.Mmu
module Table = Vmht_util.Table

type t = {
  workload : string;
  mode : string;
  size : int;
  result : Launch.result;
  bus : Bus.stats;
  dram_row_hit_rate : float;
  cpu : Cpu.stats;
  cpu_cache : Cache.stats;
  mapped_pages : int;
  metrics : Vmht_obs.Metrics.snapshot;
}

let gather soc ~workload ~mode ~size result =
  Soc.sync_metrics soc;
  {
    workload;
    mode;
    size;
    result;
    bus = Soc.bus_stats soc;
    dram_row_hit_rate = Soc.dram_row_hit_rate soc;
    cpu = Cpu.stats (Soc.cpu soc);
    cpu_cache = Cache.stats (Cpu.cache (Soc.cpu soc));
    mapped_pages = Vmht_vm.Addr_space.mapped_pages (Soc.aspace soc);
    metrics = Vmht_obs.Metrics.snapshot (Soc.metrics soc);
  }

let to_string t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let r = t.result in
  line "=== %s / %s / size %d ===" t.workload t.mode t.size;
  line "cycles: %s total (stage %s, compute %s, drain %s)"
    (Table.fmt_int r.Launch.total_cycles)
    (Table.fmt_int r.Launch.phases.Launch.stage_cycles)
    (Table.fmt_int r.Launch.phases.Launch.compute_cycles)
    (Table.fmt_int r.Launch.phases.Launch.drain_cycles);
  (match r.Launch.ret with
   | Some v -> line "returned: %d" v
   | None -> ());
  (match r.Launch.mmu_stats with
   | Some m ->
     line
       "mmu: %s accesses, %.1f%% TLB hits, %s misses, %s page faults, %s \
        cycles translating"
       (Table.fmt_int m.Mmu.accesses)
       (100. *. Option.value ~default:0. r.Launch.tlb_hit_rate)
       (Table.fmt_int m.Mmu.tlb_misses)
       (Table.fmt_int m.Mmu.page_faults)
       (Table.fmt_int m.Mmu.walk_cycles)
   | None -> ());
  (match r.Launch.accel_stats with
   | Some a ->
     line "accel: %s FSM cycles, %s loads, %s stores, %s block entries"
       (Table.fmt_int a.Vmht_hls.Accel.fsm_cycles)
       (Table.fmt_int a.Vmht_hls.Accel.loads)
       (Table.fmt_int a.Vmht_hls.Accel.stores)
       (Table.fmt_int a.Vmht_hls.Accel.block_visits)
   | None -> ());
  line "bus: %s reads, %s writes, %s words moved; waiters peaked at %d"
    (Table.fmt_int t.bus.Bus.reads)
    (Table.fmt_int t.bus.Bus.writes)
    (Table.fmt_int t.bus.Bus.words_moved)
    t.bus.Bus.bus.Vmht_sim.Resource.max_queue;
  line "dram: %.1f%% row-buffer hits" (100. *. t.dram_row_hit_rate);
  line "cpu: %s instructions, %s branches, %s memory accesses, %s faults"
    (Table.fmt_int t.cpu.Cpu.instructions)
    (Table.fmt_int t.cpu.Cpu.branches)
    (Table.fmt_int t.cpu.Cpu.mem_accesses)
    (Table.fmt_int t.cpu.Cpu.faults);
  line "cpu L1: %d read hits, %d read misses, %d writebacks"
    t.cpu_cache.Cache.read_hits t.cpu_cache.Cache.read_misses
    t.cpu_cache.Cache.writebacks;
  line "memory: %s pages mapped" (Table.fmt_int t.mapped_pages);
  line "";
  line "cycle attribution:";
  Buffer.add_string buf
    (Vmht_obs.Attribution.waterfall t.result.Launch.attribution);
  Buffer.contents buf

let to_json t =
  let module J = Vmht_obs.Json in
  let r = t.result in
  let opt f = function Some v -> f v | None -> J.Null in
  J.Obj
    [
      ("workload", J.String t.workload);
      ("mode", J.String t.mode);
      ("size", J.Int t.size);
      ("ret", opt (fun v -> J.Int v) r.Launch.ret);
      ("total_cycles", J.Int r.Launch.total_cycles);
      ( "phases",
        J.Obj
          [
            ("stage_cycles", J.Int r.Launch.phases.Launch.stage_cycles);
            ("compute_cycles", J.Int r.Launch.phases.Launch.compute_cycles);
            ("drain_cycles", J.Int r.Launch.phases.Launch.drain_cycles);
          ] );
      ("attribution", Vmht_obs.Attribution.to_json r.Launch.attribution);
      ("page_faults", J.Int r.Launch.page_faults);
      ( "tlb_hit_rate",
        opt (fun v -> J.Float v) r.Launch.tlb_hit_rate );
      ("metrics", Vmht_obs.Metrics.snapshot_to_json t.metrics);
    ]
