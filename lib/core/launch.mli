(** Executing a thread on the SoC in each of the paper's three styles:
    software on the CPU, copy-based (DMA) hardware thread, VM-enabled
    hardware thread.

    All [run_*] functions must be called in simulation-process context
    (use {!run_to_completion} or [Vmht_rt.Hthreads] to get there);
    they return cycle-accurate results with a phase breakdown. *)

type dir = In | Out | InOut

type buffer = { base : int; words : int; dir : dir }
(** A data region the thread works on.  [base] is a page-aligned
    virtual address.  Only the DMA style uses the direction (what to
    stage in and drain out); the VM style touches memory directly. *)

type request = { args : int list; buffers : buffer list }

type breakdown = {
  stage_cycles : int; (** pinning + copy-in (DMA); 0 otherwise *)
  compute_cycles : int;
  drain_cycles : int; (** copy-out + cache maintenance *)
}

type result = {
  ret : int option;
  total_cycles : int;
  phases : breakdown;
  attribution : Vmht_obs.Attribution.t;
      (** disjoint per-phase cycle split; sums to [total_cycles] *)
  mmu_stats : Vmht_vm.Mmu.stats option; (** VM style only *)
  tlb_hit_rate : float option;
  accel_stats : Vmht_hls.Accel.run_stats option; (** hardware styles *)
  page_faults : int;
}

exception Window_overflow of string
(** The DMA style's buffers exceed the scratchpad capacity — the
    failure mode VM-enabled threads do not have. *)

val run_sw : Soc.t -> Vmht_ir.Ir.func -> request -> result

val run_hw_vm : Soc.t -> Flow.hw_thread -> request -> result

val run_hw_dma : Soc.t -> Flow.hw_thread -> request -> result
(** Pin + translate pages, stage [In]/[InOut] buffers into the
    scratchpad over DMA, run, drain [Out]/[InOut] buffers, invalidate
    the CPU cache. *)

val run_hw : Soc.t -> Flow.hw_thread -> request -> result
(** Dispatch on the thread's wrapper style, with thread-level fault
    recovery: if an injected {!Vmht_fault.Injector.Abort} escapes the
    run (a DMA transfer abort), the whole attempt is re-run until it
    completes — termination is guaranteed by the plan's injection
    budget.  Cycles lost to discarded attempts are added to
    [total_cycles] and the [fault] attribution bucket, and the final
    success emits a [Fault_recover] event. *)

val run_to_completion : Soc.t -> (unit -> 'a) -> 'a
(** Run [main] as the root process until the system quiesces and
    return its value (re-raising its exception, if any). *)
