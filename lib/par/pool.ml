type job = { run : unit -> unit }

type t = {
  m : Mutex.t;
  cond : Condition.t; (* signaled on: new work, task completion, shutdown *)
  queue : job Queue.t;
  mutable live : bool;
  size : int;
  mutable workers : unit Domain.t list;
}

(* Workers drain the queue, then block until signaled; on shutdown they
   finish whatever is still queued before exiting. *)
let rec worker t =
  Mutex.lock t.m;
  let rec await () =
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.m;
      job.run ();
      worker t
    | None ->
      if t.live then begin
        Condition.wait t.cond t.m;
        await ()
      end
      else Mutex.unlock t.m
  in
  await ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      m = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      live = true;
      size = domains;
      workers = [];
    }
  in
  (* Workers take stable small span tids (1 .. domains-1; the caller
     is track 0) so a -j N trace renders as N named lanes instead of
     one track per ever-growing Domain id. *)
  t.workers <-
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () ->
            Vmht_obs.Span.set_tid (i + 1);
            worker t));
  t

let size t = t.size

let map (type b) t (f : 'a -> b) xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let results : (b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let remaining = ref n in
    (* The span (if enabled) ties each task back to the submitting
       span via a flow edge, captured here on the caller's domain. *)
    let spans_on = Vmht_obs.Span.enabled () in
    let flow_from =
      if spans_on then Vmht_obs.Span.current_span_id () else None
    in
    let apply i =
      if spans_on then
        Vmht_obs.Span.with_span ~cat:"par" ?flow_from
          ("task:" ^ string_of_int i)
          (fun () -> f xs.(i))
      else f xs.(i)
    in
    (* Runs outside the mutex; only the bookkeeping re-acquires it. *)
    let run_one i =
      let r =
        match apply i with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.m;
      results.(i) <- Some r;
      decr remaining;
      Condition.broadcast t.cond;
      Mutex.unlock t.m
    in
    Mutex.lock t.m;
    if not t.live then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add { run = (fun () -> run_one i) } t.queue
    done;
    Condition.broadcast t.cond;
    (* Help until every result of THIS call is in: run queued tasks
       (ours or other callers') rather than blocking, so a task may
       itself call [map] on the same pool without deadlock. *)
    let rec help () =
      if !remaining > 0 then begin
        match Queue.take_opt t.queue with
        | Some job ->
          Mutex.unlock t.m;
          job.run ();
          Mutex.lock t.m;
          help ()
        | None ->
          Condition.wait t.cond t.m;
          help ()
      end
    in
    help ();
    Mutex.unlock t.m;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end

let run t thunks = map t (fun f -> f ()) thunks

let shutdown t =
  Mutex.lock t.m;
  if t.live then begin
    t.live <- false;
    Condition.broadcast t.cond;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
  else Mutex.unlock t.m
