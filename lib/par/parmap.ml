let m = Mutex.create ()

let width = ref 1 (* guarded by [m]; read via [jobs] *)

let pool : Pool.t option ref = ref None (* guarded by [m] *)

let set_jobs n =
  let n = max 1 n in
  Mutex.lock m;
  let old = !pool in
  let changed = n <> !width in
  width := n;
  if changed then pool := None;
  Mutex.unlock m;
  if changed then Option.iter Pool.shutdown old

let jobs () =
  Mutex.lock m;
  let n = !width in
  Mutex.unlock m;
  n

let get_pool () =
  Mutex.lock m;
  let p =
    match !pool with
    | Some p -> p
    | None ->
      let p = Pool.create ~domains:!width in
      pool := Some p;
      p
  in
  Mutex.unlock m;
  p

let map f xs = if jobs () <= 1 then List.map f xs else Pool.map (get_pool ()) f xs

let shutdown () =
  Mutex.lock m;
  let old = !pool in
  pool := None;
  width := 1;
  Mutex.unlock m;
  Option.iter Pool.shutdown old
