(** Process-wide parallelism knob and the ordered map built on it.

    The benchmark harness (and anything else that wants "run this
    sweep as wide as the machine allows") sets a job count once at
    startup; every {!map} in the process then shares one lazily
    created {!Pool}.  With [jobs = 1] (the initial state) {!map} is
    exactly [List.map] — no pool, no domains, no synchronization —
    which keeps single-threaded behaviour bit-for-bit identical to the
    pre-parallel code. *)

val set_jobs : int -> unit
(** Set the parallel width (clamped below at 1).  Replaces (and shuts
    down) any existing pool if the width changes.  Call from the main
    domain before fanning work out — not from inside a {!map}. *)

val jobs : unit -> int
(** The current width. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map on the shared pool ([List.map] when
    [jobs () = 1]).  Nesting is safe: inner maps help execute queued
    tasks instead of blocking (see {!Pool.map}). *)

val shutdown : unit -> unit
(** Tear the shared pool down (joins its domains) and reset the width
    to 1.  Mostly for tests; harnesses can simply exit. *)
