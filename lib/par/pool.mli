(** Fixed-size domain pool with deterministic, ordered fan-out.

    A pool owns [domains - 1] worker domains (the caller is the
    remaining lane: during {!map} it executes queued tasks itself
    instead of blocking, so nested [map] calls never deadlock on a
    full pool).  Tasks are plain closures; results come back in
    submission order regardless of completion order, which is what
    lets callers that render text from sweep results stay
    byte-identical to a sequential run.

    A pool with [domains = 1] spawns nothing and [map] degenerates to
    [List.map] on the calling domain — same execution order, same
    allocation behaviour, no synchronization.

    Observability: each worker registers a stable span thread id
    (1 .. domains-1; the submitting caller is track 0), and when
    {!Vmht_obs.Span} is enabled every task runs inside a span carrying
    a flow edge back to the span that submitted the [map] — so a
    [-j N] run renders as one coherent multi-track timeline. *)

type t

val create : domains:int -> t
(** [create ~domains] starts a pool of total width [domains] (>= 1):
    [domains - 1] worker domains plus the submitting caller. *)

val size : t -> int
(** Total parallel width (the [domains] passed to {!create}). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, possibly in
    parallel, and returns the results in the order of [xs].  The
    caller participates: while its results are outstanding it pops and
    runs queued tasks (its own or other callers'), so [map] may be
    called from inside a task running on this pool.  If any
    application raises, the exception of the earliest-submitted
    failing element is re-raised (with its backtrace) after all tasks
    of this call have settled. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] is [map pool (fun f -> f ()) thunks] — ordered
    heterogeneous fan-out. *)

val shutdown : t -> unit
(** Stop accepting work, join the worker domains.  Idempotent.  [map]
    on a shut-down pool raises [Invalid_argument]. *)
