(* Command-line front end of the system-level synthesis flow:

     vmht compile FILE            front end + optimizer, dump IR
     vmht synth FILE [...]        full HLS + wrapper synthesis, dump report/RTL
     vmht run NAME [...]          run a benchmark workload on the simulated SoC
     vmht bench NAME|all|...      regenerate evaluation tables/figures
     vmht serve [...]             batch synthesis server over JSON lines
     vmht loadgen [...]           drive a request mix through the server
     vmht profile NAME            run an experiment under the phase profiler
     vmht perf diff OLD NEW       compare two bench manifests (regression gate)
     vmht list                    available workloads and experiments

   Exit codes: 0 success; 1 runtime failure (unknown name, wrong
   result); 2 front-end (parse/type) error; 3 a requested output file
   could not be written. *)

open Cmdliner

let exit_frontend = 2

let exit_write_failed = 3

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Front-end problems arrive as typed {!Vmht.Flow.error} results; this
   is the one place they become a message and an exit code. *)
let frontend_error err =
  Printf.eprintf "error: %s\n" (Vmht.Flow.error_to_string err);
  exit_frontend

let with_program file f =
  match Vmht.Flow.frontend_program (read_file file) with
  | Error err -> frontend_error err
  | Ok program ->
    f program;
    0

(* Optimizer selection, shared by every command that synthesizes:
   [--opt-level N] picks a preset schedule, [--passes a,b,c] overrides
   it with an explicit pass list.  Unknown pass names are rejected up
   front with the registry listing in the message. *)

let opt_level_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "opt-level" ] ~docv:"N"
        ~doc:"Optimization level: 0, 1 or 2 (default 2; see $(b,vmht passes)).")

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"LIST"
        ~doc:
          "Explicit comma-separated pass schedule, overriding            $(b,--opt-level) (see $(b,vmht passes) for the registry).")

(* The simulator fast path (engine wait batching, trace-compiled
   accelerator blocks, translation memo) changes host time only; this
   flag is the escape hatch and the ablation baseline. *)
let no_fastpath_arg =
  Arg.(
    value & flag
    & info [ "no-fastpath" ]
        ~doc:
          "Disable the simulator fast path (quiescence fast-forwarding, \
           trace-compiled accelerator blocks, translation memo).  \
           Simulated cycles and outputs are identical either way — see \
           the $(b,abl7) experiment.")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("sim", Vmht.Config.Model); ("rtl", Vmht.Config.Rtl) ])
        Vmht.Config.Model
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Hardware-thread executor: $(b,sim) (the model-level FSM \
           executor, default) or $(b,rtl) (parse the emitted Verilog back \
           and execute the emitted bytes on the same memory/VM stack; \
           contractually cycle- and result-identical — see the $(b,rtl1) \
           experiment).")

let banks_arg =
  Arg.(
    value & opt int 1
    & info [ "banks" ] ~docv:"N"
        ~doc:
          "Word-interleaved scratchpad banks the scheduler may arbitrate \
           across (default 1 = flat memory; accesses provably on distinct \
           banks co-issue).")

let config_with_opt config opt_level passes =
  let config =
    match opt_level with
    | Some n -> Vmht.Config.with_opt_level config n
    | None -> config
  in
  match passes with
  | Some list ->
    Vmht.Config.with_passes config
      (Some
         (List.filter
            (fun s -> s <> "")
            (String.split_on_char ',' list)))
  | None -> config

(* Resolve eagerly so a typo'd pass name fails with exit 1 before any
   work happens, whatever command carried the flag. *)
let with_schedule config f =
  match Vmht.Config.schedule config with
  | sched -> f sched
  | exception Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    1

(* ------------------------- compile -------------------------------- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let no_opt =
    Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the optimizer.")
  in
  let action file no_opt opt_level passes =
    with_schedule
      (config_with_opt Vmht.Config.default opt_level passes)
      (fun sched ->
        with_program file (fun program ->
            List.iter
              (fun kernel ->
                let func = Vmht_ir.Lower.lower_kernel kernel in
                if not no_opt then begin
                  let report = Vmht_ir.Pass_manager.run sched func in
                  Printf.printf "; %s\n"
                    (Vmht_ir.Pass_manager.report_to_string report)
                end;
                print_string (Vmht_ir.Ir.func_to_string func);
                print_newline ())
              program))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Parse, typecheck, lower and optimize kernels.")
    Term.(const action $ file $ no_opt $ opt_level_arg $ passes_arg)

(* ------------------------- synth ---------------------------------- *)

let iface_conv =
  Arg.enum [ ("vm", Vmht.Wrapper.Vm_iface); ("dma", Vmht.Wrapper.Dma_iface) ]

let synth_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let iface =
    Arg.(
      value
      & opt iface_conv Vmht.Wrapper.Vm_iface
      & info [ "iface" ] ~doc:"Interface wrapper style: vm or dma.")
  in
  let unroll =
    Arg.(value & opt int 1 & info [ "unroll" ] ~doc:"Loop unroll factor.")
  in
  let emit_rtl =
    Arg.(
      value & flag & info [ "verilog" ] ~doc:"Print the generated RTL too.")
  in
  let pipeline =
    Arg.(value & flag & info [ "pipeline" ] ~doc:"Modulo-schedule inner loops.")
  in
  let action file iface unroll banks emit_rtl pipeline opt_level passes =
    let config =
      Vmht.Config.with_pipelining
        (Vmht.Config.with_unroll Vmht.Config.default unroll)
        pipeline
    in
    let config = Vmht.Config.with_banks config banks in
    let config = config_with_opt config opt_level passes in
    with_schedule config (fun _sched ->
        with_program file (fun program ->
            List.iter
              (fun kernel ->
                let hw =
                  Vmht.Flow.run_exn
                    (Vmht.Flow.Request.of_kernel ~config ~style:iface kernel)
                in
                print_endline (Vmht.Flow.summary hw);
                if emit_rtl then begin
                  print_newline ();
                  print_string hw.Vmht.Flow.verilog
                end)
              program))
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize hardware threads (HLS + interface wrapper).")
    Term.(
      const action $ file $ iface $ unroll $ banks_arg $ emit_rtl $ pipeline
      $ opt_level_arg $ passes_arg)

(* ------------------------- run ------------------------------------ *)

let write_chrome_trace ?process_name ?pid path events =
  match Vmht_obs.Chrome_trace.write_file ?process_name ?pid path events with
  | () -> true
  | exception Sys_error msg ->
    Printf.eprintf "cannot write trace: %s\n" msg;
    false

let write_spans path =
  match Vmht_obs.Span.write_chrome_file path (Vmht_obs.Span.spans ()) with
  | () -> true
  | exception Sys_error msg ->
    Printf.eprintf "cannot write spans: %s\n" msg;
    false

let mode_conv =
  Arg.enum
    [
      ("sw", Vmht_eval.Common.Sw);
      ("vm", Vmht_eval.Common.Vm);
      ("dma", Vmht_eval.Common.Dma);
    ]

let run_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Vmht_eval.Common.Vm
      & info [ "mode" ] ~doc:"Execution style: sw, vm or dma.")
  in
  let size = Arg.(value & opt (some int) None & info [ "size" ]) in
  let tlb = Arg.(value & opt (some int) None & info [ "tlb" ]) in
  let tlb2 =
    Arg.(
      value
      & opt (some int) None
      & info [ "tlb2" ] ~docv:"ENTRIES"
          ~doc:
            "Enable the SoC-shared second-level TLB with $(docv) entries \
             (4-way, LRU, 2-cycle probe).")
  in
  let walk_cache =
    Arg.(
      value
      & opt (some int) None
      & info [ "walk-cache" ] ~docv:"ENTRIES"
          ~doc:
            "Give each MMU's walker a $(docv)-slot page-walk cache (0 \
             disables).")
  in
  let page_shift = Arg.(value & opt (some int) None & info [ "page-shift" ]) in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the full system report.")
  in
  let trace_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace" ] ~docv:"N"
          ~doc:"Record the system trace and print its first $(docv) events.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record the system trace and write it as Chrome-trace JSON \
             (load in Perfetto or chrome://tracing) to $(docv).")
  in
  let metrics_json =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Emit the machine-readable report (metrics registry, phase \
             attribution) as JSON: with no argument on stdout, replacing \
             the usual summary; with $(docv), written there alongside it.")
  in
  let pipeline =
    Arg.(value & flag & info [ "pipeline" ] ~doc:"Modulo-schedule inner loops.")
  in
  let spans_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans-out" ] ~docv:"FILE"
          ~doc:
            "Record causal host-time spans (parse, passes, schedule, emit, \
             simulate) and write them as Chrome-trace JSON to $(docv).")
  in
  let unroll =
    Arg.(value & opt int 1 & info [ "unroll" ] ~doc:"Loop unroll factor.")
  in
  let action wname mode size tlb tlb2 walk_cache page_shift stats trace_n
      trace_out metrics_json spans_out pipeline unroll banks no_fastpath
      backend opt_level passes =
    match Vmht_workloads.Registry.find wname with
    | exception Not_found ->
      Printf.eprintf "unknown workload '%s' (try: vmht list)\n" wname;
      1
    | _ when backend = Vmht.Config.Rtl && pipeline ->
      (* The emitted FSM is unpipelined; fail up front rather than from
         the middle of a launch. *)
      Printf.eprintf
        "--backend rtl does not support --pipeline (the emitted FSM is \
         unpipelined)\n";
      1
    | w ->
      let config = config_with_opt Vmht.Config.default opt_level passes in
      let config = Vmht.Config.with_backend config backend in
      let config = Vmht.Config.with_unroll config unroll in
      let config = Vmht.Config.with_banks config banks in
      let config = Vmht.Config.with_fastpath config (not no_fastpath) in
      let config =
        match tlb with
        | Some entries -> Vmht.Config.with_tlb_entries config entries
        | None -> config
      in
      let config =
        match tlb2 with
        | Some entries ->
          Vmht.Config.with_tlb2 config
            { Vmht_vm.Tlb2.default_config with Vmht_vm.Tlb2.enabled = true; entries }
        | None -> config
      in
      let config =
        match walk_cache with
        | Some entries -> Vmht.Config.with_walk_cache config entries
        | None -> config
      in
      let config =
        match page_shift with
        | Some shift -> Vmht.Config.with_page_shift config shift
        | None -> config
      in
      let config = Vmht.Config.with_pipelining config pipeline in
      with_schedule config @@ fun _sched ->
      let size =
        Option.value ~default:w.Vmht_workloads.Workload.default_size size
      in
      let observe = Option.is_some trace_out || Option.is_some metrics_json in
      if Option.is_some spans_out then Vmht_obs.Span.enable true;
      let o =
        Vmht_eval.Common.run ~config ?trace_events:trace_n ~observe mode w
          ~size
      in
      let r = o.Vmht_eval.Common.result in
      let trace_ok =
        match trace_out with
        | Some path ->
          write_chrome_trace
            ~pid:(Vmht.Soc.id o.Vmht_eval.Common.soc)
            path
            (Vmht_sim.Trace.events (Vmht.Soc.trace o.Vmht_eval.Common.soc))
        | None -> true
      in
      let spans_ok =
        match spans_out with Some path -> write_spans path | None -> true
      in
      let report_json () =
        let report =
          Vmht.Report.gather o.Vmht_eval.Common.soc ~workload:wname
            ~mode:(Vmht_eval.Common.mode_name mode)
            ~size r
        in
        Vmht_obs.Json.to_string_pretty (Vmht.Report.to_json report)
      in
      let metrics_ok =
        match metrics_json with
        | Some path when path <> "-" -> (
          try
            let oc = open_out path in
            output_string oc (report_json ());
            output_char oc '\n';
            close_out oc;
            true
          with Sys_error msg ->
            Printf.eprintf "cannot write metrics: %s\n" msg;
            false)
        | Some _ | None -> true
      in
      if metrics_json = Some "-" then
        (* Machine-readable mode: the report JSON is the only stdout. *)
        print_endline (report_json ())
      else begin
        Printf.printf "%s / %s / size %d: %s cycles (%s)\n" wname
          (Vmht_eval.Common.mode_name mode)
          size
          (Vmht_util.Table.fmt_int r.Vmht.Launch.total_cycles)
          (if o.Vmht_eval.Common.correct then "correct" else "WRONG RESULT");
        Printf.printf "  phases: stage=%d compute=%d drain=%d\n"
          r.Vmht.Launch.phases.Vmht.Launch.stage_cycles
          r.Vmht.Launch.phases.Vmht.Launch.compute_cycles
          r.Vmht.Launch.phases.Vmht.Launch.drain_cycles;
        (match r.Vmht.Launch.mmu_stats with
         | Some s ->
           Printf.printf
             "  mmu: %d accesses, %d hits, %d misses, %d faults, hit rate \
              %.3f\n"
             s.Vmht_vm.Mmu.accesses s.Vmht_vm.Mmu.tlb_hits
             s.Vmht_vm.Mmu.tlb_misses s.Vmht_vm.Mmu.page_faults
             (Option.value ~default:0. r.Vmht.Launch.tlb_hit_rate)
         | None -> ());
        (match trace_out with
         | Some path when trace_ok ->
           Printf.printf "  trace written to %s\n" path
         | _ -> ());
        (match spans_out with
         | Some path when spans_ok ->
           Printf.printf "  spans written to %s\n" path
         | _ -> ());
        (match metrics_json with
         | Some path when path <> "-" && metrics_ok ->
           Printf.printf "  metrics written to %s\n" path
         | _ -> ());
        (match trace_n with
         | Some n ->
           let events =
             Vmht_sim.Trace.events (Vmht.Soc.trace o.Vmht_eval.Common.soc)
           in
           Printf.printf "  trace (%d of %d events):\n"
             (min n (List.length events))
             (List.length events);
           List.iteri
             (fun i e ->
               if i < n then
                 Printf.printf "    %s\n" (Vmht_obs.Event.to_string e))
             events
         | None -> ());
        if stats then begin
          let report =
            Vmht.Report.gather o.Vmht_eval.Common.soc ~workload:wname
              ~mode:(Vmht_eval.Common.mode_name mode)
              ~size r
          in
          print_newline ();
          print_string (Vmht.Report.to_string report)
        end
      end;
      if not o.Vmht_eval.Common.correct then 1
      else if not (trace_ok && metrics_ok && spans_ok) then exit_write_failed
      else 0
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark workload on the simulated SoC.")
    Term.(
      const action $ workload_arg $ mode $ size $ tlb $ tlb2 $ walk_cache
      $ page_shift $ stats $ trace_n $ trace_out $ metrics_json $ spans_out
      $ pipeline $ unroll $ banks_arg $ no_fastpath_arg $ backend_arg
      $ opt_level_arg
      $ passes_arg)

(* ------------------------- trace ---------------------------------- *)

let trace_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Vmht_eval.Common.Vm
      & info [ "mode" ] ~doc:"Execution style: sw, vm or dma.")
  in
  let size = Arg.(value & opt (some int) None & info [ "size" ]) in
  let component =
    Arg.(
      value
      & opt (some string) None
      & info [ "component" ] ~docv:"NAME"
          ~doc:"Only events from this component (bus, mmu, dram, ...).")
  in
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"TAG"
          ~doc:
            "Only events of this kind (tlb_miss, bus_txn, page_fault, ...).")
  in
  let limit =
    Arg.(
      value & opt int 40
      & info [ "limit" ] ~docv:"N" ~doc:"Print at most $(docv) events.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the (filtered) events as Chrome-trace JSON instead of \
             text.")
  in
  let tlb2 =
    Arg.(
      value
      & opt (some int) None
      & info [ "tlb2" ] ~docv:"ENTRIES"
          ~doc:"Enable the shared second-level TLB with $(docv) entries.")
  in
  let walk_cache =
    Arg.(
      value
      & opt (some int) None
      & info [ "walk-cache" ] ~docv:"ENTRIES"
          ~doc:"Give each page-table walker a $(docv)-entry walk cache.")
  in
  let action wname mode size tlb2 walk_cache component kind limit out =
    match Vmht_workloads.Registry.find wname with
    | exception Not_found ->
      Printf.eprintf "unknown workload '%s' (try: vmht list)\n" wname;
      1
    | w ->
      let size =
        Option.value ~default:w.Vmht_workloads.Workload.default_size size
      in
      let config =
        match tlb2 with
        | Some entries ->
          Vmht.Config.with_tlb2 Vmht.Config.default
            {
              Vmht_vm.Tlb2.default_config with
              Vmht_vm.Tlb2.enabled = true;
              entries;
            }
        | None -> Vmht.Config.default
      in
      let config =
        match walk_cache with
        | Some entries -> Vmht.Config.with_walk_cache config entries
        | None -> config
      in
      let o = Vmht_eval.Common.run ~config ~observe:true mode w ~size in
      let tr = Vmht.Soc.trace o.Vmht_eval.Common.soc in
      (* "--component mmu" matches every numbered instance ("mmu",
         "mmu1", ...); an exact instance name still selects just it. *)
      let base name =
        let n = String.length name in
        let rec go i = if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then go (i - 1) else i in
        String.sub name 0 (go n)
      in
      let keep (e : Vmht_obs.Event.t) =
        (match component with
         | Some c ->
           e.Vmht_obs.Event.component = c
           || base e.Vmht_obs.Event.component = c
         | None -> true)
        && (match kind with
            | Some k -> Vmht_obs.Event.label e.Vmht_obs.Event.kind = k
            | None -> true)
      in
      let events = List.filter keep (Vmht_sim.Trace.events tr) in
      if events = [] && Vmht_sim.Trace.count tr > 0 then
        Printf.eprintf
          "no events matched the filter (check --component/--kind against \
           the unfiltered dump)\n";
      let write_ok = ref true in
      (match out with
       | Some path ->
         if write_chrome_trace path events then
           Printf.printf "%d events written to %s\n" (List.length events)
             path
         else write_ok := false
       | None ->
         let dropped = Vmht_sim.Trace.dropped tr in
         if dropped > 0 then
           Printf.printf "... %d earlier events dropped ...\n" dropped;
         List.iteri
           (fun i e ->
             if i < limit then
               print_endline (Vmht_obs.Event.to_string e))
           events;
         if List.length events > limit then
           Printf.printf "... %d more events (raise --limit) ...\n"
             (List.length events - limit));
      if not o.Vmht_eval.Common.correct then 1
      else if not !write_ok then exit_write_failed
      else 0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with event observation on and dump or export its \
          typed trace.")
    Term.(
      const action $ workload_arg $ mode $ size $ tlb2 $ walk_cache
      $ component $ kind $ limit $ out)

(* ------------------------- system --------------------------------- *)

let device_conv =
  Arg.enum [ ("7020", Vmht.Sysgen.zynq_7020); ("7045", Vmht.Sysgen.zynq_7045) ]

let system_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let iface =
    Arg.(
      value
      & opt iface_conv Vmht.Wrapper.Vm_iface
      & info [ "iface" ] ~doc:"Interface wrapper style: vm or dma.")
  in
  let copies =
    Arg.(
      value & opt int 1
      & info [ "copies" ] ~doc:"Instances of each kernel to place.")
  in
  let device =
    Arg.(
      value
      & opt device_conv Vmht.Sysgen.zynq_7020
      & info [ "device" ] ~doc:"Target device: 7020 or 7045.")
  in
  let emit_top =
    Arg.(value & flag & info [ "top" ] ~doc:"Print the system-top RTL stub.")
  in
  let action file iface copies device emit_top =
    with_program file (fun program ->
        let config = Vmht.Config.default in
        let threads =
          List.map
            (fun kernel ->
              ( Vmht.Flow.run_exn
                  (Vmht.Flow.Request.of_kernel ~config ~style:iface kernel),
                copies ))
            program
        in
        let design = Vmht.Sysgen.compose ~device threads in
        print_string (Vmht.Sysgen.summary design);
        if emit_top then begin
          print_newline ();
          print_string design.Vmht.Sysgen.top_verilog
        end)
  in
  Cmd.v
    (Cmd.info "system"
       ~doc:
         "Compose every kernel of a file into a full SoC design and check           it against a device budget.")
    Term.(const action $ file $ iface $ copies $ device $ emit_top)

(* ------------------------- bench ---------------------------------- *)

let bench_cmd =
  let names =
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for experiment sweeps (default: the \
             machine's recommended domain count; 1 = sequential).  \
             Output is byte-identical at any width.")
  in
  let fault_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:
            "Enable fault injection: every fault class fires with \
             per-opportunity probability $(docv).  The robust experiment \
             then sweeps exactly this plan instead of its defaults.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Base seed for the deterministic fault schedule (and anything \
             else the configuration seeds).")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable run manifest (experiments run, \
             output sizes, seed, fault plan, per-run histograms, \
             mismatches) to $(docv).")
  in
  let spans_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans-out" ] ~docv:"FILE"
          ~doc:
            "Record causal host-time spans across the domain pool and \
             write them as Chrome-trace JSON to $(docv): one track per \
             worker, flow arrows from the submitting sweep.")
  in
  let action jobs fault_rate seed metrics_json spans_out no_fastpath opt_level
      passes names =
    Vmht_par.Parmap.set_jobs
      (match jobs with
       | Some n -> n
       | None -> Domain.recommended_domain_count ());
    Vmht_eval.Common.reset_mismatches ();
    Vmht_eval.Common.reset_run_stats ();
    if Option.is_some spans_out then Vmht_obs.Span.enable true;
    let config = Vmht.Config.default in
    let config =
      match seed with
      | Some s -> Vmht.Config.with_seed config s
      | None -> config
    in
    let config =
      match fault_rate with
      | Some rate ->
        Vmht.Config.with_fault config (Vmht_fault.Plan.uniform ~rate)
      | None -> config
    in
    let config = config_with_opt config opt_level passes in
    let config = Vmht.Config.with_fastpath config (not no_fastpath) in
    with_schedule config @@ fun sched ->
    Vmht_ir.Pass_manager.reset_totals ();
    Vmht_vm.Vm_totals.reset ();
    let ran = ref [] in
    let run_one = function
      | "all" ->
        let out = Vmht_eval.All_experiments.run_all ~config () in
        print_string out;
        ran := ("all", String.length out) :: !ran;
        0
      | name -> (
        match Vmht_eval.Experiment.find name with
        | Some e ->
          let out = Vmht_eval.Experiment.run ~config e in
          print_string (out ^ "\n");
          ran := (name, String.length out) :: !ran;
          0
        | None ->
          Printf.eprintf "unknown experiment '%s'\n" name;
          1)
    in
    let code = List.fold_left (fun acc n -> max acc (run_one n)) 0 names in
    let mismatches = Vmht_eval.Common.mismatch_log () in
    let code =
      match mismatches with
      | [] -> code
      | bad ->
        Printf.eprintf "result mismatches in %d run(s):\n" (List.length bad);
        List.iter (Printf.eprintf "  %s\n") bad;
        max code 1
    in
    let code =
      match spans_out with
      | Some path when not (write_spans path) -> max code exit_write_failed
      | _ -> code
    in
    match metrics_json with
    | None -> code
    | Some path -> (
      let module Json = Vmht_obs.Json in
      let rs = Vmht_eval.Common.global_run_stats () in
      let hsummary h =
        Vmht_obs.Histogram.summary_to_json (Vmht_obs.Histogram.summary h)
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.String "vmht-bench-run/2");
            ("jobs", Json.Int (Vmht_par.Parmap.jobs ()));
            ("seed", Json.Int config.Vmht.Config.seed);
            ( "fault",
              Json.String (Vmht_fault.Plan.to_string config.Vmht.Config.fault)
            );
            ("fastpath", Json.Bool config.Vmht.Config.fastpath);
            ( "experiments",
              Json.List
                (List.rev_map
                   (fun (name, bytes) ->
                     Json.Obj
                       [
                         ("name", Json.String name);
                         ("output_bytes", Json.Int bytes);
                       ])
                   !ran) );
            ( "passes",
              Json.Obj
                [
                  ( "schedule",
                    Json.String sched.Vmht_ir.Pass_manager.sname );
                  ( "order",
                    Json.List
                      (List.map
                         (fun (p : Vmht_ir.Pass.t) ->
                           Json.String p.Vmht_ir.Pass.name)
                         sched.Vmht_ir.Pass_manager.passes) );
                ] );
            ( "pass_stats",
              Json.List
                (List.map
                   (fun (pass, runs, rewrites) ->
                     Json.Obj
                       [
                         ("pass", Json.String pass);
                         ("runs", Json.Int runs);
                         ("rewrites", Json.Int rewrites);
                       ])
                   (Vmht_ir.Pass_manager.totals ())) );
            ( "vm",
              let tot = Vmht_vm.Vm_totals.totals () in
              Json.Obj
                [
                  ("tlb2.lookups", Json.Int tot.Vmht_vm.Vm_totals.tlb2_lookups);
                  ("tlb2.hits", Json.Int tot.Vmht_vm.Vm_totals.tlb2_hits);
                  ( "tlb2.misses",
                    Json.Int
                      (tot.Vmht_vm.Vm_totals.tlb2_lookups
                     - tot.Vmht_vm.Vm_totals.tlb2_hits) );
                  ( "tlb2.evictions",
                    Json.Int tot.Vmht_vm.Vm_totals.tlb2_evictions );
                  ( "walk_cache.hits",
                    Json.Int tot.Vmht_vm.Vm_totals.walk_cache_hits );
                  ( "walk_cache.misses",
                    Json.Int tot.Vmht_vm.Vm_totals.walk_cache_misses );
                ] );
            ( "run",
              Json.Obj
                [
                  ("cycles", hsummary rs.Vmht_eval.Common.run_cycles);
                  ("host_ns", hsummary rs.Vmht_eval.Common.run_host_ns);
                ] );
            ( "mismatches",
              Json.List (List.map (fun s -> Json.String s) mismatches) );
            ("exit_code", Json.Int code);
          ]
      in
      try
        let oc = open_out path in
        output_string oc (Json.to_string_pretty doc);
        output_char oc '\n';
        close_out oc;
        code
      with Sys_error msg ->
        Printf.eprintf "cannot write manifest: %s\n" msg;
        max code exit_write_failed)
  in
  let man =
    `S Manpage.s_description
    :: `P
         "Run the named experiments — or $(b,all) — and print their \
          rendered tables and figures.  Experiments (from the registry):"
    :: List.map
         (fun (e : Vmht_eval.Experiment.t) ->
           `P
             (Printf.sprintf "$(b,%s) (%s) — %s" e.Vmht_eval.Experiment.name
                (Vmht_eval.Experiment.kind_name e.Vmht_eval.Experiment.kind)
                e.Vmht_eval.Experiment.doc))
         Vmht_eval.Experiment.all
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate evaluation tables and figures." ~man)
    Term.(
      const action $ jobs $ fault_rate $ seed $ metrics_json $ spans_out
      $ no_fastpath_arg
      $ opt_level_arg
      $ passes_arg $ names)

(* ------------------------- serve / loadgen ------------------------ *)

(* Both service commands share the store plumbing: open (or skip) the
   persistent content-addressed store, install it into the flow so
   every synthesis in this process — and in workers forked after this
   point — reads and writes through it. *)

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent synthesis store directory (default: \
           $(b,VMHT_STORE_DIR), else $(b,XDG_CACHE_HOME)/vmht/store, else \
           ~/.cache/vmht/store).")

let no_store_arg =
  Arg.(
    value & flag
    & info [ "no-store" ] ~doc:"Run without the persistent synthesis store.")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Forked worker processes (default 0: execute in-process on the \
           domain pool, see $(b,--jobs)).  Output is byte-identical at any \
           shard count.")

let serve_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domain-pool width for the in-process substrate (ignored when \
           $(b,--shards) > 0; processes and domains do not mix across \
           $(b,fork)).")

let open_store store_dir no_store =
  if no_store then Ok None
  else
    match Vmht_serve.Store.open_ ?dir:store_dir () with
    | Ok s ->
      Vmht_serve.Store.install s;
      Ok (Some s)
    | Error e -> Error e

let store_error err =
  Printf.eprintf "error: %s\n" (Vmht.Flow.error_to_string err);
  exit_write_failed

let loadgen_cmd =
  let requests =
    Arg.(
      value & opt int 120
      & info [ "requests" ] ~docv:"N" ~doc:"Requests in the batch.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S" ~doc:"Seed for the request mix.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the timing-bearing manifest (throughput, latency \
             quantiles, store hit rate) to $(docv).")
  in
  let require_hit_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "require-hit-rate" ] ~docv:"R"
          ~doc:
            "Fail (exit 1) unless the store hit rate over this batch's \
             synthesis keys reaches $(docv) — the CI warm-store gate.")
  in
  let action requests shards seed store_dir no_store jobs metrics_json
      require_hit_rate =
    match open_store store_dir no_store with
    | Error e -> store_error e
    | Ok store ->
      (* Fork the worker fleet before any domain can exist; only then
         widen the in-process pool (when there is no fleet). *)
      let server =
        Vmht_serve.Server.create ~shards ?store
          ~handle:Vmht_eval.Loadgen.handle ()
      in
      if shards = 0 then Vmht_par.Parmap.set_jobs jobs;
      let config = Vmht.Config.with_seed Vmht.Config.default seed in
      let reqs = Vmht_eval.Loadgen.mix ~config ~requests ~seed in
      let report = Vmht_eval.Loadgen.run ?store ~server ~seed reqs in
      Vmht_serve.Server.shutdown server;
      print_string report.Vmht_eval.Loadgen.output;
      prerr_string report.Vmht_eval.Loadgen.perf_line;
      let metrics_ok =
        match metrics_json with
        | None -> true
        | Some path -> (
          try
            let oc = open_out path in
            output_string oc
              (Vmht_obs.Json.to_string_pretty
                 report.Vmht_eval.Loadgen.manifest);
            output_char oc '\n';
            close_out oc;
            true
          with Sys_error msg ->
            Printf.eprintf "cannot write manifest: %s\n" msg;
            false)
      in
      let hit_rate_ok =
        match require_hit_rate with
        | None -> true
        | Some r ->
          let ok = report.Vmht_eval.Loadgen.hit_rate >= r in
          if not ok then
            Printf.eprintf "store hit rate %.2f below required %.2f\n"
              report.Vmht_eval.Loadgen.hit_rate r;
          ok
      in
      if report.Vmht_eval.Loadgen.failures > 0 || not hit_rate_ok then 1
      else if not metrics_ok then exit_write_failed
      else 0
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a seeded synthesis/execution request mix through the batch \
          server and report throughput, latency and store hit rate.")
    Term.(
      const action $ requests $ shards_arg $ seed $ store_dir_arg
      $ no_store_arg $ serve_jobs_arg $ metrics_json $ require_hit_rate)

(* One request per JSON line; a blank line (or EOF) flushes the batch.
   Example lines:
     {"op":"synth","workload":"vecadd","style":"dma","unroll":2}
     {"op":"synth","source":"kernel k(n: int): int { return n; }"}
     {"op":"run","workload":"mmul","mode":"vm","size":8}  *)
let serve_line_to_job line =
  let module J = Vmht_obs.Json in
  match J.of_string line with
  | exception J.Parse_error msg -> Error (`Frontend msg)
  | j -> (
    let str k = Option.bind (J.member k j) J.to_str in
    let int k = Option.bind (J.member k j) J.to_int in
    let config = Vmht.Config.default in
    let config =
      match int "unroll" with
      | Some u -> Vmht.Config.with_unroll config u
      | None -> config
    in
    let config =
      match int "opt" with
      | Some o -> Vmht.Config.with_opt_level config o
      | None -> config
    in
    let config =
      match int "tlb" with
      | Some t -> Vmht.Config.with_tlb_entries config t
      | None -> config
    in
    let style =
      match str "style" with
      | Some "dma" -> Vmht.Wrapper.Dma_iface
      | _ -> Vmht.Wrapper.Vm_iface
    in
    match str "op" with
    | Some "synth" -> (
      match (str "workload", str "source") with
      | Some wname, _ -> (
        match Vmht_workloads.Registry.find wname with
        | exception Not_found ->
          Error (`Request (Printf.sprintf "unknown workload %S" wname))
        | w ->
          Ok
            (Vmht_serve.Proto.Synthesize
               {
                 kernel = Vmht_workloads.Workload.kernel w;
                 style;
                 config;
               }))
      | None, Some source -> (
        match Vmht.Flow.frontend_program source with
        | Error e -> Error (`Frontend (Vmht.Flow.error_to_string e))
        | Ok [] -> Error (`Request "source contains no kernels")
        | Ok (first :: _ as program) -> (
          let kernel =
            match str "name" with
            | None -> Some first
            | Some n ->
              List.find_opt
                (fun (k : Vmht_lang.Ast.kernel) -> k.Vmht_lang.Ast.kname = n)
                program
          in
          match kernel with
          | None -> Error (`Request "no kernel with the requested name")
          | Some kernel ->
            Ok (Vmht_serve.Proto.Synthesize { kernel; style; config })))
      | None, None -> Error (`Request "synth needs \"workload\" or \"source\""))
    | Some "run" -> (
      match str "workload" with
      | None -> Error (`Request "run needs \"workload\"")
      | Some wname -> (
        match Vmht_workloads.Registry.find wname with
        | exception Not_found ->
          Error (`Request (Printf.sprintf "unknown workload %S" wname))
        | w ->
          let mode =
            Option.value
              (Option.bind (str "mode") Vmht_serve.Proto.mode_of_name)
              ~default:Vmht_serve.Proto.Vm
          in
          let size =
            Option.value (int "size")
              ~default:w.Vmht_workloads.Workload.default_size
          in
          Ok (Vmht_serve.Proto.Execute { workload = wname; mode; size; config })
        ))
    | Some op -> Error (`Request (Printf.sprintf "unknown op %S" op))
    | None -> Error (`Request "missing \"op\""))

let serve_cmd =
  let action shards store_dir no_store jobs =
    match open_store store_dir no_store with
    | Error e -> store_error e
    | Ok store ->
      let server =
        Vmht_serve.Server.create ~shards ?store
          ~handle:Vmht_eval.Loadgen.handle ()
      in
      if shards = 0 then Vmht_par.Parmap.set_jobs jobs;
      let module J = Vmht_obs.Json in
      let next_rid = ref 0 in
      let batch = ref [] in
      (* Requests rejected at parse time still get a reply line, held
         back so each flushed batch prints in request order. *)
      let prefailed = ref [] in
      let worst = ref 0 in
      let reply_line (rid, status, result) =
        print_endline
          (J.to_string
             (J.Obj
                [
                  ("rid", J.Int rid);
                  ("status", J.String status);
                  ("result", J.String result);
                ]))
      in
      let flush_batch () =
        let served =
          match List.rev !batch with
          | [] -> []
          | reqs ->
            List.map
              (fun (reply : Vmht_serve.Proto.reply) ->
                match reply.Vmht_serve.Proto.outcome with
                | Vmht_serve.Proto.Failed msg ->
                  worst := max !worst 1;
                  (reply.Vmht_serve.Proto.rid, "failed", msg)
                | outcome ->
                  ( reply.Vmht_serve.Proto.rid,
                    "ok",
                    Vmht_serve.Proto.outcome_to_string outcome ))
              (Vmht_serve.Server.run_batch server reqs)
        in
        List.iter reply_line
          (List.sort compare (List.rev_append !prefailed served));
        batch := [];
        prefailed := [];
        flush stdout
      in
      (try
         while true do
           let line = input_line stdin in
           if String.trim line = "" then flush_batch ()
           else begin
             let rid = !next_rid in
             incr next_rid;
             match serve_line_to_job line with
             | Ok job ->
               batch :=
                 { Vmht_serve.Proto.rid; attempt = 1; deadline_ms = None; job }
                 :: !batch
             | Error (`Frontend msg) ->
               worst := max !worst exit_frontend;
               prefailed := (rid, "failed", msg) :: !prefailed
             | Error (`Request msg) ->
               worst := max !worst 1;
               prefailed := (rid, "failed", msg) :: !prefailed
           end
         done
       with End_of_file -> flush_batch ());
      Vmht_serve.Server.shutdown server;
      !worst
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batch synthesis server: JSON-line requests on stdin (a blank line \
          or EOF flushes a batch), JSON-line replies in request order on \
          stdout, deduplicated against the persistent store.")
    Term.(
      const action $ shards_arg $ store_dir_arg $ no_store_arg
      $ serve_jobs_arg)

(* ------------------------- profile -------------------------------- *)

let profile_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domain-pool width while profiling (default 1).")
  in
  let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"S") in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the profile as JSON to $(docv).")
  in
  let action name jobs seed no_fastpath json_out =
    match Vmht_eval.Experiment.find name with
    | None ->
      Printf.eprintf "unknown experiment '%s'\n" name;
      1
    | Some e ->
      Vmht_par.Parmap.set_jobs jobs;
      let config = Vmht.Config.default in
      let config =
        match seed with
        | Some s -> Vmht.Config.with_seed config s
        | None -> config
      in
      let config = Vmht.Config.with_fastpath config (not no_fastpath) in
      (* Enable before any engine exists: the profiling hook is bound
         at [Engine.create]. *)
      Vmht_obs.Profile.enable true;
      ignore (Vmht_eval.Experiment.run ~config e : string);
      let t = Vmht_obs.Profile.totals () in
      Printf.printf "profile: %s (fastpath %s)\n%s" name
        (if config.Vmht.Config.fastpath then "on" else "off")
        (Vmht_obs.Profile.render t);
      let exact =
        Vmht_obs.Profile.cycle_sum t = t.Vmht_obs.Profile.engine_cycles
      in
      Printf.printf "  cycle attribution %s (phases %d, engines %d)\n"
        (if exact then "sums exactly to the engine total" else "MISMATCH")
        (Vmht_obs.Profile.cycle_sum t)
        t.Vmht_obs.Profile.engine_cycles;
      let json_ok =
        match json_out with
        | None -> true
        | Some path -> (
          try
            let oc = open_out path in
            output_string oc
              (Vmht_obs.Json.to_string_pretty (Vmht_obs.Profile.to_json t));
            output_char oc '\n';
            close_out oc;
            Printf.printf "  profile written to %s\n" path;
            true
          with Sys_error msg ->
            Printf.eprintf "cannot write profile: %s\n" msg;
            false)
      in
      if not exact then 1 else if not json_ok then exit_write_failed else 0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run an experiment under the simulator phase profiler and report \
          where simulated cycles and host time go (dispatch, actor, \
          memory, translate).")
    Term.(const action $ name_arg $ jobs $ seed $ no_fastpath_arg $ json_out)

(* ------------------------- perf ----------------------------------- *)

let perf_diff_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
  in
  let threshold =
    Arg.(
      value & opt float 10.
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Flag a metric as regressed when it grows by at least \
             $(docv) percent (default 10).")
  in
  let warn_only =
    Arg.(
      value & flag
      & info [ "warn-only" ]
          ~doc:
            "Report regressions but exit 0 anyway (for noisy shared \
             runners).")
  in
  let action old_path new_path threshold warn_only =
    let read_manifest path =
      match Vmht_obs.Json.of_string (read_file path) with
      | v -> Ok v
      | exception Sys_error msg -> Error msg
      | exception Vmht_obs.Json.Parse_error msg ->
        Error (Printf.sprintf "%s: %s" path msg)
    in
    match (read_manifest old_path, read_manifest new_path) with
    | Error msg, _ | _, Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit_frontend
    | Ok old_manifest, Ok new_manifest ->
      let report =
        Vmht_obs.Perf_diff.diff ~threshold ~old_manifest ~new_manifest ()
      in
      print_string (Vmht_obs.Perf_diff.render ~threshold report);
      if report.Vmht_obs.Perf_diff.regressions = [] then 0
      else if warn_only then begin
        print_endline "(warn-only: not failing)";
        0
      end
      else 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two bench manifests and fail when any metric regressed \
          past the threshold.")
    Term.(const action $ old_arg $ new_arg $ threshold $ warn_only)

let perf_cmd =
  Cmd.group
    (Cmd.info "perf"
       ~doc:"Performance tooling: the manifest regression gate.")
    [ perf_diff_cmd ]

(* ------------------------- dse ------------------------------------ *)

let dse_cmd =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for the sweep (default: the machine's \
             recommended domain count; 1 = sequential).  Output is \
             byte-identical at any width.")
  in
  let size =
    Arg.(
      value
      & opt int Vmht_eval.Dse.default_size
      & info [ "size" ] ~docv:"N" ~doc:"Elements per kernel run.")
  in
  let kernels =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "kernels" ] ~docv:"K1,K2"
          ~doc:"Kernels to explore (default: vecadd,saxpy,dotprod,stencil3).")
  in
  let axis_arg name doc =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ name ] ~docv:"N1,N2" ~doc)
  in
  let unrolls = axis_arg "unrolls" "Unroll factors to sweep (default: 1,2,4)." in
  let banks = axis_arg "bank-counts" "Bank counts to sweep (default: 1,2,4)." in
  let opts = axis_arg "opts" "Optimization levels to sweep (default: 0,2)." in
  let tlbs = axis_arg "tlbs" "TLB entry counts to sweep (default: 8,32)." in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the full grid (every point, front flags included) \
             as a vmht-dse/1 manifest to $(docv).")
  in
  let action jobs size kernels unrolls banks opts tlbs json_out =
    Vmht_par.Parmap.set_jobs
      (match jobs with
       | Some n -> n
       | None -> Domain.recommended_domain_count ());
    let kernels =
      Option.value ~default:Vmht_eval.Dse.default_kernels kernels
    in
    let unknown =
      List.filter
        (fun k -> not (List.mem k Vmht_workloads.Registry.names))
        kernels
    in
    if unknown <> [] then begin
      Printf.eprintf "unknown kernel(s): %s\n" (String.concat ", " unknown);
      1
    end
    else begin
      let d = Vmht_eval.Dse.default_axes in
      let pick v dflt = Option.value ~default:dflt v in
      let axes =
        {
          Vmht_eval.Dse.unrolls = pick unrolls d.Vmht_eval.Dse.unrolls;
          Vmht_eval.Dse.banks = pick banks d.Vmht_eval.Dse.banks;
          Vmht_eval.Dse.opts = pick opts d.Vmht_eval.Dse.opts;
          Vmht_eval.Dse.tlbs = pick tlbs d.Vmht_eval.Dse.tlbs;
        }
      in
      let points =
        Vmht_eval.Dse.explore ~size ~axes ~kernels Vmht.Config.default
      in
      print_string (Vmht_eval.Dse.render ~size points);
      print_newline ();
      match json_out with
      | None -> 0
      | Some path -> (
        try
          let oc = open_out path in
          output_string oc
            (Vmht_obs.Json.to_string_pretty
               (Vmht_eval.Dse.manifest ~size points));
          output_char oc '\n';
          close_out oc;
          0
        with Sys_error msg ->
          Printf.eprintf "cannot write manifest: %s\n" msg;
          exit_write_failed)
    end
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Explore the unroll x banks x opt-level x TLB design space over \
          the domain pool and report each kernel's Pareto front over \
          cycles vs LUT area.")
    Term.(
      const action $ jobs $ size $ kernels $ unrolls $ banks $ opts $ tlbs
      $ json_out)

(* ------------------------- passes --------------------------------- *)

let passes_cmd =
  let action () =
    print_endline "passes:";
    List.iter
      (fun (p : Vmht_ir.Pass.t) ->
        Printf.printf "  %-16s %-8s %s\n" p.Vmht_ir.Pass.name
          (Vmht_ir.Pass.kind_name p.Vmht_ir.Pass.kind)
          p.Vmht_ir.Pass.doc)
      (Vmht_ir.Pass.all ());
    print_endline "presets:";
    List.iter
      (fun (s : Vmht_ir.Pass_manager.schedule) ->
        Printf.printf "  -%-4s %s\n" s.Vmht_ir.Pass_manager.sname
          (match s.Vmht_ir.Pass_manager.passes with
           | [] -> "(none)"
           | ps ->
             String.concat ", "
               (List.map (fun (p : Vmht_ir.Pass.t) -> p.Vmht_ir.Pass.name) ps)))
      [
        Vmht_ir.Pass_manager.o0 ();
        Vmht_ir.Pass_manager.o1 ();
        Vmht_ir.Pass_manager.o2 ();
      ];
    0
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:
         "List the registered optimization passes and the -O0/-O1/-O2           preset schedules.")
    Term.(const action $ const ())

(* ------------------------- list ----------------------------------- *)

let list_cmd =
  let action () =
    print_endline "workloads:";
    List.iter
      (fun (w : Vmht_workloads.Workload.t) ->
        Printf.printf "  %-12s %s\n" w.Vmht_workloads.Workload.name
          w.Vmht_workloads.Workload.description)
      Vmht_workloads.Registry.all;
    print_endline "experiments:";
    List.iter
      (fun (e : Vmht_eval.Experiment.t) ->
        Printf.printf "  %-8s %-9s %s\n" e.Vmht_eval.Experiment.name
          (Vmht_eval.Experiment.kind_name e.Vmht_eval.Experiment.kind)
          e.Vmht_eval.Experiment.doc)
      Vmht_eval.Experiment.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List workloads and experiments.")
    Term.(const action $ const ())

let () =
  let doc = "system-level synthesis for virtual-memory-enabled hardware threads" in
  let info = Cmd.info "vmht" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            compile_cmd;
            synth_cmd;
            run_cmd;
            trace_cmd;
            system_cmd;
            bench_cmd;
            serve_cmd;
            loadgen_cmd;
            profile_cmd;
            perf_cmd;
            dse_cmd;
            passes_cmd;
            list_cmd;
          ]))
