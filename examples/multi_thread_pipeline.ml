(* A software/hardware pipeline sharing one virtual address space.

     dune exec examples/multi_thread_pipeline.exe

   Stage 1 (software thread): generate a frame of sensor samples.
   Stage 2 (hardware thread): smooth it with a 3-point stencil.
   Stage 3 (hardware thread): histogram the smoothed frame.

   The stages hand each other nothing but virtual base addresses —
   exactly the pthreads idiom, with two of the threads in "fabric".
   Double buffering: stage 1 produces frame k+1 while the hardware
   works on frame k; a barrier separates generations. *)

open Vmht
module Hthreads = Vmht_rt.Hthreads
module Addr_space = Vmht_vm.Addr_space

let frames = 4

let n = 2048

let word = 8

let stencil_src = (Vmht_workloads.Registry.find "stencil3").Vmht_workloads.Workload.source

let hist_src = (Vmht_workloads.Registry.find "histogram").Vmht_workloads.Workload.source

let () =
  let config = Config.default in
  let soc = Soc.create config in
  let aspace = Soc.aspace soc in
  let stencil =
    Flow.run_exn
      (Flow.Request.of_kernel ~config
         (Vmht_lang.Parser.parse_kernel stencil_src))
  in
  let hist =
    Flow.run_exn
      (Flow.Request.of_kernel ~config
         (Vmht_lang.Parser.parse_kernel hist_src))
  in
  let raw = Addr_space.alloc aspace ~bytes:(n * word) in
  let smooth = Addr_space.alloc aspace ~bytes:(n * word) in
  let histo = Addr_space.alloc aspace ~bytes:(256 * word) in
  let rng = Vmht_util.Rng.create 7 in

  let produce frame =
    (* The "sensor": CPU-side writes into the shared frame buffer. *)
    for i = 0 to n - 1 do
      Addr_space.store_word aspace
        (raw + (i * word))
        (Vmht_util.Rng.int_range rng 0 1023 + frame)
    done
  in
  let total_cycles =
    Launch.run_to_completion soc (fun () ->
        let t0 = Vmht_sim.Engine.now_p () in
        for frame = 1 to frames do
          produce frame;
          (* Hardware stage 2: smooth.  Runs as its own thread. *)
          let t_sm =
            Hthreads.spawn ~name:"stencil" (fun () ->
                Launch.run_hw soc stencil
                  { Launch.args = [ raw; smooth; n - 1 ]; buffers = [] })
          in
          ignore (Hthreads.join t_sm);
          (* Hardware stage 3: histogram the smoothed frame. *)
          let t_h =
            Hthreads.spawn ~name:"hist" (fun () ->
                Launch.run_hw soc hist
                  { Launch.args = [ smooth; histo; n ]; buffers = [] })
          in
          ignore (Hthreads.join t_h)
        done;
        Vmht_sim.Engine.now_p () - t0)
  in
  (* Validate: the histogram counts every processed sample. *)
  let total_binned = ref 0 in
  for b = 0 to 255 do
    total_binned := !total_binned + Addr_space.load_word aspace (histo + (b * word))
  done;
  Printf.printf "pipeline processed %d frames of %d samples in %s cycles\n"
    frames n
    (Vmht_util.Table.fmt_int total_cycles);
  Printf.printf "histogram holds %d samples (expected %d)\n" !total_binned
    (frames * n);
  exit (if !total_binned = frames * n then 0 else 1)
