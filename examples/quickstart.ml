(* Quickstart: synthesize a kernel into a VM-enabled hardware thread
   and run it against memory shared with the host, start to finish.

     dune exec examples/quickstart.exe

   Walks the whole public API: write a kernel in HTL, synthesize it
   (HLS + VM wrapper), build an SoC, allocate data in the process
   address space, launch the hardware thread on virtual addresses, and
   read the results back — no staging, no copies. *)

open Vmht

let kernel_source =
  {|
kernel scale_offset(src: int*, dst: int*, n: int, k: int, c: int) {
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    dst[i] = k * src[i] + c;
  }
}
|}

let () =
  let config = Config.default in

  (* 1. Synthesize: source -> optimized IR -> schedule -> datapath +
        VM interface wrapper (TLB, page-table walker, bus port). *)
  let hw = Flow.run_exn (Flow.Request.of_source ~config kernel_source) in
  print_endline (Flow.summary hw);
  print_newline ();

  (* 2. Build the system: CPU, bus, DRAM, page tables. *)
  let soc = Soc.create config in
  let aspace = Soc.aspace soc in

  (* 3. Allocate and fill the thread's data in *virtual* memory. *)
  let n = 1000 in
  let word = 8 in
  let src = Vmht_vm.Addr_space.alloc aspace ~bytes:(n * word) in
  let dst = Vmht_vm.Addr_space.alloc aspace ~bytes:(n * word) in
  for i = 0 to n - 1 do
    Vmht_vm.Addr_space.store_word aspace (src + (i * word)) i
  done;

  (* 4. Launch the hardware thread with plain virtual pointers. *)
  let result =
    Launch.run_to_completion soc (fun () ->
        Launch.run_hw soc hw
          { Launch.args = [ src; dst; n; 3; 7 ]; buffers = [] })
  in

  (* 5. The host reads the output directly — same address space. *)
  let ok = ref true in
  for i = 0 to n - 1 do
    if Vmht_vm.Addr_space.load_word aspace (dst + (i * word)) <> (3 * i) + 7
    then ok := false
  done;

  Printf.printf "ran in %s cycles (compute %s, post %s)\n"
    (Vmht_util.Table.fmt_int result.Launch.total_cycles)
    (Vmht_util.Table.fmt_int result.Launch.phases.Launch.compute_cycles)
    (Vmht_util.Table.fmt_int result.Launch.phases.Launch.drain_cycles);
  (match result.Launch.mmu_stats with
   | Some s ->
     Printf.printf "TLB: %d accesses, %.1f%% hits, %d walks\n"
       s.Vmht_vm.Mmu.accesses
       (100. *. Option.value ~default:0. result.Launch.tlb_hit_rate)
       s.Vmht_vm.Mmu.tlb_misses
   | None -> ());
  Printf.printf "results %s\n" (if !ok then "correct" else "WRONG");
  exit (if !ok then 0 else 1)
