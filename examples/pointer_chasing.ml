(* Pointer chasing: the motivating workload of the paper.

     dune exec examples/pointer_chasing.exe

   A linked list is scattered across pages of the process heap.  The
   VM-enabled hardware thread chases the *virtual* next-pointers
   directly; the copy-based thread can only do it by staging the whole
   arena into its scratchpad first; software walks it on the CPU.  The
   example prints the three costs side by side, plus the staging
   breakdown that explains them. *)

module Workload = Vmht_workloads.Workload
module Common = Vmht_eval.Common
module Table = Vmht_util.Table

let () =
  let w = Vmht_workloads.Registry.find "list_sum" in
  let sizes = [ 512; 2048; 8192 ] in
  let table =
    Table.create
      ~title:"list_sum: software vs copy-based vs VM-enabled (cycles)"
      ~headers:
        [
          "nodes"; "SW"; "DMA total"; "DMA stage"; "VM total"; "VM vs DMA";
        ]
  in
  List.iter
    (fun size ->
      let sw = Common.run Common.Sw w ~size in
      let dma = Common.run Common.Dma w ~size in
      let vm = Common.run Common.Vm w ~size in
      assert (sw.Common.correct && dma.Common.correct && vm.Common.correct);
      Table.add_row table
        [
          string_of_int size;
          Table.fmt_int (Common.cycles sw);
          Table.fmt_int (Common.cycles dma);
          Table.fmt_int
            dma.Common.result.Vmht.Launch.phases.Vmht.Launch.stage_cycles;
          Table.fmt_int (Common.cycles vm);
          Table.fmt_float
            (float_of_int (Common.cycles dma)
            /. float_of_int (Common.cycles vm))
          ^ "x";
        ])
    sizes;
  Table.print table;
  print_endline
    "The copy-based interface pays to stage the whole arena before it\n\
     can chase a single pointer; the VM-enabled thread touches only the\n\
     nodes the traversal visits.";
  (* Also show the failure mode: a scratchpad that cannot hold the
     arena makes the copy-based thread infeasible outright. *)
  let small =
    { Vmht.Config.default with Vmht.Config.scratchpad_words = 1024 }
  in
  (match Common.run ~config:small Common.Dma w ~size:8192 with
   | _ -> print_endline "unexpected: overflow not detected"
   | exception Vmht.Launch.Window_overflow msg ->
     Printf.printf
       "\nwith a 8 KiB scratchpad the copy-based run fails outright:\n  %s\n"
       msg);
  print_endline "(the VM-enabled thread has no such limit)"
