(* Sizing the wrapper TLB for a kernel: area/performance trade-off.

     dune exec examples/tlb_tuning.exe

   Sweeps the per-thread TLB and prints runtime, hit rate and wrapper
   area side by side — how a designer would pick the smallest TLB that
   still saturates performance for a given kernel. *)

module Common = Vmht_eval.Common
module Table = Vmht_util.Table
module Optypes = Vmht_hls.Optypes

let () =
  let w = Vmht_workloads.Registry.find "spmv" in
  let table =
    Table.create
      ~title:"spmv: TLB size vs runtime, hit rate and wrapper area"
      ~headers:[ "entries"; "cycles"; "hit rate"; "wrapper LUT"; "wrapper FF" ]
  in
  List.iter
    (fun entries ->
      let config = Vmht.Config.with_tlb_entries Vmht.Config.default entries in
      let o = Common.run ~config Common.Vm w ~size:1024 in
      assert o.Common.correct;
      let area = Vmht.Wrapper.vm_area config.Vmht.Config.mmu in
      Table.add_row table
        [
          string_of_int entries;
          Table.fmt_int (Common.cycles o);
          Table.fmt_float ~decimals:3
            (Option.value ~default:0. o.Common.result.Vmht.Launch.tlb_hit_rate);
          string_of_int area.Optypes.lut;
          string_of_int area.Optypes.ff;
        ])
    [ 2; 4; 8; 16; 32; 64 ];
  Table.print table;
  print_endline
    "Pick the knee: beyond the working set of pages, extra entries cost\n\
     area without buying cycles."
