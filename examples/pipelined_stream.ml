(* Loop pipelining (the flow's extension mode) from the user's side.

     dune exec examples/pipelined_stream.exe

   The same dot-product hardware thread is synthesized twice — as a
   plain FSM and with modulo-scheduled loops — and both run on the same
   data.  The report shows the achieved initiation interval and where
   the cycles went. *)

open Vmht
module Addr_space = Vmht_vm.Addr_space
module Fsm = Vmht_hls.Fsm
module Pipeliner = Vmht_hls.Pipeliner

let kernel_source = (Vmht_workloads.Registry.find "dotprod").Vmht_workloads.Workload.source

let n = 4096

let run config label =
  let soc = Soc.create config in
  let aspace = Soc.aspace soc in
  let word = 8 in
  let a = Addr_space.alloc aspace ~bytes:(n * word) in
  let b = Addr_space.alloc aspace ~bytes:(n * word) in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    Addr_space.store_word aspace (a + (i * word)) i;
    Addr_space.store_word aspace (b + (i * word)) (i mod 7);
    expected := !expected + (i * (i mod 7))
  done;
  let hw = Flow.run_exn (Flow.Request.of_source ~config kernel_source) in
  let result =
    Launch.run_to_completion soc (fun () ->
        Launch.run_hw soc hw { Launch.args = [ a; b; n ]; buffers = [] })
  in
  assert (result.Launch.ret = Some !expected);
  Printf.printf "%-10s %s cycles" label
    (Vmht_util.Table.fmt_int result.Launch.total_cycles);
  (match hw.Flow.fsm.Fsm.plans with
   | p :: _ ->
     Printf.printf "  (II=%d, depth=%d, vs %d-cycle FSM iteration)"
       p.Pipeliner.ii p.Pipeliner.depth p.Pipeliner.unpipelined_cycles
   | [] -> ());
  print_newline ();
  result.Launch.total_cycles

let () =
  let fsm = run Config.default "FSM" in
  let pipe =
    run (Config.with_pipelining Config.default true) "pipelined"
  in
  Printf.printf "speedup: %.2fx — same kernel, same data, one flag\n"
    (float_of_int fsm /. float_of_int pipe)
