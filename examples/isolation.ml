(* Multi-process isolation: two processes, two hardware threads, one
   fabric.

     dune exec examples/isolation.exe

   Each process gets its own page table and ASID; the hardware threads
   attached to them can use the *same virtual addresses* for different
   physical data, and a TLB shootdown closes the stale-translation
   window when the kernel unmaps a page. *)

open Vmht
module Addr_space = Vmht_vm.Addr_space
module Mmu = Vmht_vm.Mmu

let sum_kernel =
  {|
kernel sum4(p: int*) : int {
  return p[0] + p[1] + p[2] + p[3];
}
|}

let () =
  let config = Config.default in
  let soc = Soc.create config in
  let space_a = Soc.aspace soc in
  let space_b, asid_b = Soc.create_process soc in

  (* Same allocation order => the two processes use the SAME virtual
     address for their private buffers. *)
  let va = Addr_space.alloc space_a ~bytes:4096 in
  let vb = Addr_space.alloc space_b ~bytes:4096 in
  assert (va = vb);
  for i = 0 to 3 do
    Addr_space.store_word space_a (va + (i * 8)) (100 + i);
    Addr_space.store_word space_b (vb + (i * 8)) (900 + i)
  done;

  let hw = Flow.run_exn (Flow.Request.of_source ~config sum_kernel) in
  let mmu_a = Soc.make_mmu soc in
  let mmu_b = Soc.make_mmu ~aspace:(space_b, asid_b) soc in
  let run mmu =
    let port, flush = Soc.vm_port soc mmu in
    let r = Vmht_hls.Accel.run hw.Flow.fsm ~port ~args:[ va ] in
    flush ();
    r
  in
  let ra, rb =
    Launch.run_to_completion soc (fun () ->
        let ta = Vmht_rt.Hthreads.spawn ~name:"proc-a" (fun () -> run mmu_a) in
        let tb = Vmht_rt.Hthreads.spawn ~name:"proc-b" (fun () -> run mmu_b) in
        (Vmht_rt.Hthreads.join ta, Vmht_rt.Hthreads.join tb))
  in
  Printf.printf
    "virtual address 0x%x:\n  process A's thread (asid 0) read %s\n\
    \  process B's thread (asid %d) read %s\n"
    va
    (match ra with Some v -> string_of_int v | None -> "?")
    asid_b
    (match rb with Some v -> string_of_int v | None -> "?");
  assert (ra = Some (100 + 101 + 102 + 103));
  assert (rb = Some (900 + 901 + 902 + 903));

  (* The kernel unmaps A's page and shoots the TLBs down; the thread's
     next access faults instead of reading stale data. *)
  Soc.unmap_page soc space_a ~vaddr:va;
  let faulted =
    Launch.run_to_completion soc (fun () ->
        match run mmu_a with
        | _ -> false
        | exception Mmu.Mmu_fault _ -> true)
  in
  Printf.printf "after unmap + shootdown: process A's access %s\n"
    (if faulted then "faults (as it must)" else "DID NOT FAULT");
  exit (if faulted then 0 else 1)
