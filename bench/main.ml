(* Benchmark harness.

   Two jobs:

   1. Regenerate the paper's evaluation: with no arguments (or with
      experiment names / "tables" / "figures" / "all"), print every
      table and figure.  This is what EXPERIMENTS.md records.

   2. `micro`: Bechamel micro-benchmarks — one Test.make per table and
      figure, each timing the core operation that experiment stresses
      (full experiment runs take seconds and belong to job 1; the micro
      suite watches for regressions in the underlying machinery). *)

open Bechamel
module Workload = Vmht_workloads.Workload
module Registry = Vmht_workloads.Registry

let vecadd = Registry.find "vecadd"

let list_sum = Registry.find "list_sum"

let spmv = Registry.find "spmv"

(* --- micro-benchmark bodies ------------------------------------- *)

let synthesize_vm () =
  ignore (Vmht_eval.Common.synthesize Vmht.Wrapper.Vm_iface vecadd)

let synthesize_dma () =
  ignore (Vmht_eval.Common.synthesize Vmht.Wrapper.Dma_iface vecadd)

let run_small mode w () =
  let o = Vmht_eval.Common.run mode w ~size:256 in
  assert o.Vmht_eval.Common.correct

let optimize_pipeline () =
  let f = Vmht_ir.Lower.lower_kernel (Workload.kernel spmv) in
  ignore (Vmht_ir.Passes.optimize f)

let tlb_churn () =
  let tlb =
    Vmht_vm.Tlb.create
      { Vmht_vm.Tlb.entries = 16; assoc = 0; policy = Vmht_vm.Tlb.Lru }
  in
  for i = 0 to 999 do
    let vpn = i * 7 mod 64 in
    (match Vmht_vm.Tlb.lookup tlb ~vpn with
     | Some _ -> ()
     | None ->
       Vmht_vm.Tlb.insert tlb ~vpn
         { Vmht_vm.Tlb.frame = vpn * 4096; writable = true });
    ignore (Vmht_vm.Tlb.lookup tlb ~vpn)
  done

let page_table_churn () =
  let phys = Vmht_mem.Phys_mem.create ~bytes:(1 lsl 21) in
  let frames =
    Vmht_vm.Frame_alloc.create ~base:0 ~bytes:(1 lsl 21) ~page_bytes:4096
  in
  let pt = Vmht_vm.Page_table.create phys frames ~page_shift:12 ~va_bits:24 in
  for vpn = 1 to 100 do
    Vmht_vm.Page_table.map pt ~vaddr:(vpn * 4096)
      ~frame:(Vmht_vm.Frame_alloc.alloc frames)
      ~writable:true
  done;
  for vpn = 1 to 100 do
    ignore (Vmht_vm.Page_table.lookup pt ~vaddr:(vpn * 4096))
  done

let unroll_synthesis () =
  let config = Vmht.Config.with_unroll Vmht.Config.default 8 in
  ignore (Vmht_eval.Common.synthesize ~config Vmht.Wrapper.Vm_iface vecadd)

let multi_thread_pair () =
  (* Two concurrent hardware threads, as fig6 scales up. *)
  let config = Vmht.Config.default in
  let soc = Vmht.Soc.create config in
  let i1 = vecadd.Workload.setup (Vmht.Soc.aspace soc) ~size:128 ~seed:1 in
  let i2 = vecadd.Workload.setup (Vmht.Soc.aspace soc) ~size:128 ~seed:2 in
  let hw =
    Vmht.Flow.synthesize config Vmht.Wrapper.Vm_iface (Workload.kernel vecadd)
  in
  Vmht.Launch.run_to_completion soc (fun () ->
      let spawn inst =
        Vmht_rt.Hthreads.spawn ~name:"ht" (fun () ->
            Vmht.Launch.run_hw soc hw
              { Vmht.Launch.args = inst.Workload.args; buffers = [] })
      in
      let t1 = spawn i1 in
      let t2 = spawn i2 in
      ignore (Vmht_rt.Hthreads.join t1);
      ignore (Vmht_rt.Hthreads.join t2))

let micro_tests =
  [
    Test.make ~name:"table1.sw-profile"
      (Staged.stage (run_small Vmht_eval.Common.Sw vecadd));
    Test.make ~name:"table2.synthesize-vm" (Staged.stage synthesize_vm);
    Test.make ~name:"table3.run-vm-small"
      (Staged.stage (run_small Vmht_eval.Common.Vm vecadd));
    Test.make ~name:"table4.optimizer" (Staged.stage optimize_pipeline);
    Test.make ~name:"table5.synthesize-dma" (Staged.stage synthesize_dma);
    Test.make ~name:"fig1.run-dma-small"
      (Staged.stage (run_small Vmht_eval.Common.Dma vecadd));
    Test.make ~name:"fig2.tlb-churn" (Staged.stage tlb_churn);
    Test.make ~name:"fig3.page-table-churn" (Staged.stage page_table_churn);
    Test.make ~name:"fig4.pointer-chase-vm"
      (Staged.stage (run_small Vmht_eval.Common.Vm list_sum));
    Test.make ~name:"fig5.unroll-synthesis" (Staged.stage unroll_synthesis);
    Test.make ~name:"fig6.two-threads" (Staged.stage multi_thread_pair);
  ]

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 200) ()
  in
  let test = Test.make_grouped ~name:"vmht" ~fmt:"%s %s" micro_tests in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  print_endline "micro-benchmarks (monotonic clock, ns per run):";
  Hashtbl.iter
    (fun _metric tbl ->
      let rows =
        Hashtbl.fold
          (fun name ols_result acc ->
            let estimate =
              match Analyze.OLS.estimates ols_result with
              | Some [ e ] -> Printf.sprintf "%14.0f ns" e
              | Some es ->
                String.concat ", " (List.map (Printf.sprintf "%.0f") es)
              | None -> "n/a"
            in
            (name, estimate) :: acc)
          tbl []
      in
      List.iter
        (fun (name, estimate) -> Printf.printf "  %-32s %s\n" name estimate)
        (List.sort compare rows))
    results

(* --- entry point -------------------------------------------------- *)

let usage () =
  Printf.printf "usage: main.exe [all|tables|figures|micro|%s]...\n"
    (String.concat "|" Vmht_eval.All_experiments.names)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let targets = if args = [] then [ "all" ] else args in
  List.iter
    (fun target ->
      match target with
      | "all" ->
        print_string (Vmht_eval.All_experiments.run_all ());
        run_micro ()
      | "tables" ->
        List.iter
          (fun n -> print_string (Vmht_eval.All_experiments.run n ^ "\n"))
          [ "table1"; "table2"; "table3"; "table4"; "table5" ]
      | "figures" ->
        List.iter
          (fun n -> print_string (Vmht_eval.All_experiments.run n ^ "\n"))
          [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6" ]
      | "micro" -> run_micro ()
      | "help" | "--help" | "-h" -> usage ()
      | name -> (
        match Vmht_eval.All_experiments.run name with
        | output -> print_string (output ^ "\n")
        | exception Not_found ->
          Printf.eprintf "unknown experiment '%s'\n" name;
          usage ();
          exit 1))
    targets
