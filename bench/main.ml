(* Benchmark harness.

   Three jobs:

   1. Regenerate the paper's evaluation: with no arguments (or with
      experiment names / "tables" / "figures" / "all"), print every
      table and figure.  This is what EXPERIMENTS.md records.
      Experiments fan out over a domain pool; `-j N` sets its width
      (default: the machine's recommended domain count, `-j 1` is the
      fully sequential behavior).  Output is byte-identical at any
      width.

   2. `micro [name...]`: Bechamel micro-benchmarks — one Test.make per
      experiment plus targets for the simulator machinery itself
      (event queue, MMU translation).  With name arguments, only
      targets whose name contains one of them run.

   3. `perf [--json FILE]`: wall-clock seconds per experiment, the
      synthesis-cache counters, and the micro estimates — optionally
      written to FILE as a JSON snapshot (the committed
      BENCH_eval.json). *)

open Bechamel
module Workload = Vmht_workloads.Workload
module Registry = Vmht_workloads.Registry
module Json = Vmht_obs.Json

(* Lazy so that running a single micro target (or none) doesn't pay
   for the others' workload lookups at startup. *)
let vecadd = lazy (Registry.find "vecadd")

let list_sum = lazy (Registry.find "list_sum")

let spmv = lazy (Registry.find "spmv")

(* --- micro-benchmark bodies ------------------------------------- *)

(* Synthesis bodies pass ~cache:false: with the process-wide memo
   cache they would otherwise time a table lookup after the first
   iteration. *)

let synthesize_vm () =
  ignore
    (Vmht_eval.Common.synthesize ~cache:false Vmht.Wrapper.Vm_iface
       (Lazy.force vecadd))

let synthesize_dma () =
  ignore
    (Vmht_eval.Common.synthesize ~cache:false Vmht.Wrapper.Dma_iface
       (Lazy.force vecadd))

let run_small mode w () =
  let o = Vmht_eval.Common.run mode (Lazy.force w) ~size:256 in
  assert o.Vmht_eval.Common.correct

let optimize_pipeline () =
  let f = Vmht_ir.Lower.lower_kernel (Workload.kernel (Lazy.force spmv)) in
  ignore (Vmht_ir.Pass_manager.optimize f)

let tlb_churn () =
  let tlb =
    Vmht_vm.Tlb.create
      { Vmht_vm.Tlb.entries = 16; assoc = 0; policy = Vmht_vm.Tlb.Lru }
  in
  for i = 0 to 999 do
    let vpn = i * 7 mod 64 in
    (match Vmht_vm.Tlb.lookup tlb ~vpn with
     | Some _ -> ()
     | None ->
       Vmht_vm.Tlb.insert tlb ~vpn
         { Vmht_vm.Tlb.frame = vpn * 4096; writable = true });
    ignore (Vmht_vm.Tlb.lookup tlb ~vpn)
  done

let page_table_churn () =
  let phys = Vmht_mem.Phys_mem.create ~bytes:(1 lsl 21) in
  let frames =
    Vmht_vm.Frame_alloc.create ~base:0 ~bytes:(1 lsl 21) ~page_bytes:4096
  in
  let pt = Vmht_vm.Page_table.create phys frames ~page_shift:12 ~va_bits:24 in
  for vpn = 1 to 100 do
    Vmht_vm.Page_table.map pt ~vaddr:(vpn * 4096)
      ~frame:(Vmht_vm.Frame_alloc.alloc frames)
      ~writable:true
  done;
  for vpn = 1 to 100 do
    ignore (Vmht_vm.Page_table.lookup pt ~vaddr:(vpn * 4096))
  done

let event_queue_churn () =
  let q = Vmht_sim.Event_queue.create () in
  for round = 0 to 3 do
    for i = 0 to 255 do
      (* Scrambled arrival times exercise sift-up and sift-down. *)
      Vmht_sim.Event_queue.push q ~at:((i * 37) land 1023) (round + i)
    done;
    for _ = 0 to 191 do
      ignore (Vmht_sim.Event_queue.pop_payload_exn q)
    done
  done;
  while not (Vmht_sim.Event_queue.is_empty q) do
    ignore (Vmht_sim.Event_queue.pop_payload_exn q)
  done

let mmu_translate_churn () =
  let bytes = 1 lsl 21 in
  let phys = Vmht_mem.Phys_mem.create ~bytes in
  let dram = Vmht_mem.Dram.create () in
  let bus = Vmht_mem.Bus.create phys dram in
  let frames = Vmht_vm.Frame_alloc.create ~base:0 ~bytes ~page_bytes:4096 in
  let aspace =
    Vmht_vm.Addr_space.create phys frames ~page_shift:12 ~va_bits:24
  in
  let base = Vmht_vm.Addr_space.alloc aspace ~bytes:(8 * 4096) in
  let mmu = Vmht_vm.Mmu.create Vmht_vm.Mmu.default_config bus aspace in
  let eng = Vmht_sim.Engine.create () in
  Vmht_sim.Engine.spawn eng ~name:"bench" (fun () ->
      (* 8 pages of working set against a 16-entry TLB: after the 8
         cold misses every translate is a hit — the fast path. *)
      for i = 0 to 4095 do
        ignore (Vmht_vm.Mmu.translate mmu ~vaddr:(base + (i * 8 mod 32768)))
      done);
  Vmht_sim.Engine.run eng

let multi_thread_pair () =
  (* Two concurrent hardware threads, as fig6 scales up. *)
  let vecadd = Lazy.force vecadd in
  let config = Vmht.Config.default in
  let soc = Vmht.Soc.create config in
  let i1 = vecadd.Workload.setup (Vmht.Soc.aspace soc) ~size:128 ~seed:1 in
  let i2 = vecadd.Workload.setup (Vmht.Soc.aspace soc) ~size:128 ~seed:2 in
  let hw =
    Vmht.Flow.run_exn
      (Vmht.Flow.Request.of_kernel ~config ~style:Vmht.Wrapper.Vm_iface
         (Workload.kernel vecadd))
  in
  Vmht.Launch.run_to_completion soc (fun () ->
      let spawn inst =
        Vmht_rt.Hthreads.spawn ~name:"ht" (fun () ->
            Vmht.Launch.run_hw soc hw
              { Vmht.Launch.args = inst.Workload.args; buffers = [] })
      in
      let t1 = spawn i1 in
      let t2 = spawn i2 in
      ignore (Vmht_rt.Hthreads.join t1);
      ignore (Vmht_rt.Hthreads.join t2))

(* Lazy Test.t per target: selecting a subset by name never builds
   (or forces the workloads of) the rest. *)
let micro_targets : (string * Test.t Lazy.t) list =
  let t name body = (name, lazy (Test.make ~name (Staged.stage body))) in
  [
    t "table1.sw-profile" (run_small Vmht_eval.Common.Sw vecadd);
    t "table2.synthesize-vm" synthesize_vm;
    t "table3.run-vm-small" (run_small Vmht_eval.Common.Vm vecadd);
    t "table4.optimizer" optimize_pipeline;
    t "table5.synthesize-dma" synthesize_dma;
    t "fig1.run-dma-small" (run_small Vmht_eval.Common.Dma vecadd);
    t "fig2.tlb-churn" tlb_churn;
    t "fig3.page-table-churn" page_table_churn;
    t "fig4.pointer-chase-vm" (run_small Vmht_eval.Common.Vm list_sum);
    t "fig5.unroll-synthesis" (fun () ->
        let config = Vmht.Config.with_unroll Vmht.Config.default 8 in
        ignore
          (Vmht_eval.Common.synthesize ~config ~cache:false
             Vmht.Wrapper.Vm_iface (Lazy.force vecadd)));
    t "fig6.two-threads" multi_thread_pair;
    t "sim.event-queue-churn" event_queue_churn;
    t "sim.mmu-translate" mmu_translate_churn;
  ]

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let select_micro filters =
  List.filter
    (fun (name, _) ->
      filters = [] || List.exists (contains_substring name) filters)
    micro_targets

(* --- micro measurement ------------------------------------------- *)

let micro_estimates tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 200) ()
  in
  let test = Test.make_grouped ~name:"vmht" ~fmt:"%s %s" tests in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> Some e
            | Some _ | None -> None
          in
          rows := (name, estimate) :: !rows)
        tbl)
    results;
  List.sort compare !rows

let run_micro ?(filters = []) () =
  match select_micro filters with
  | [] ->
    Printf.eprintf "no micro target matches %s\n"
      (String.concat ", " filters);
    exit 1
  | selected ->
    let estimates =
      micro_estimates (List.map (fun (_, t) -> Lazy.force t) selected)
    in
    print_endline "micro-benchmarks (monotonic clock, ns per run):";
    List.iter
      (fun (name, estimate) ->
        let cell =
          match estimate with
          | Some e -> Printf.sprintf "%14.0f ns" e
          | None -> "n/a"
        in
        Printf.printf "  %-32s %s\n" name cell)
      estimates

(* --- perf snapshot ------------------------------------------------ *)

(* The commit the snapshot was taken at, read straight from .git (no
   subprocess): HEAD is either a hash or a "ref: ..." pointer into
   refs/ or packed-refs. *)
let git_rev () =
  let read path =
    try
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (String.trim s)
    with Sys_error _ | End_of_file -> None
  in
  match read ".git/HEAD" with
  | None -> "unknown"
  | Some head when not (String.length head > 5 && String.sub head 0 5 = "ref: ")
    -> head
  | Some head -> (
    let ref_name = String.trim (String.sub head 5 (String.length head - 5)) in
    match read (".git/" ^ ref_name) with
    | Some hash -> hash
    | None -> (
      match read ".git/packed-refs" with
      | None -> "unknown"
      | Some packed -> (
        let lines = String.split_on_char '\n' packed in
        let matching =
          List.find_opt
            (fun line ->
              match String.index_opt line ' ' with
              | Some i ->
                String.sub line (i + 1) (String.length line - i - 1) = ref_name
              | None -> false)
            lines
        in
        match matching with
        | Some line -> String.sub line 0 (String.index line ' ')
        | None -> "unknown")))

let run_perf ~config ~json () =
  let t0 = Unix.gettimeofday () in
  Printf.printf "perf: %d experiments, %d jobs\n%!"
    (List.length Vmht_eval.All_experiments.names)
    (Vmht_par.Parmap.jobs ());
  Vmht_eval.Common.reset_run_stats ();
  let experiments =
    List.map
      (fun name ->
        let s0 = Unix.gettimeofday () in
        let out, stats =
          Vmht_eval.Common.with_run_stats (fun () ->
              Vmht_eval.All_experiments.run ~config name)
        in
        let seconds = Unix.gettimeofday () -. s0 in
        Printf.printf "  %-8s %8.3f s  (%d bytes)\n%!" name seconds
          (String.length out);
        (name, seconds, String.length out, stats))
      Vmht_eval.All_experiments.names
  in
  let total_seconds = Unix.gettimeofday () -. t0 in
  let cache = Vmht.Flow.cache_stats () in
  let metrics = Vmht_obs.Metrics.create () in
  Vmht.Flow.sync_cache_metrics metrics;
  Vmht.Flow.sync_pass_metrics metrics;
  print_string
    (Vmht_obs.Metrics.snapshot_to_string (Vmht_obs.Metrics.snapshot metrics));
  Printf.printf "total: %.3f s\n%!" total_seconds;
  let micro = micro_estimates (List.map (fun (_, t) -> Lazy.force t) micro_targets) in
  List.iter
    (fun (name, estimate) ->
      Printf.printf "  %-32s %s\n" name
        (match estimate with
         | Some e -> Printf.sprintf "%14.0f ns" e
         | None -> "n/a"))
    micro;
  match json with
  | None -> ()
  | Some path ->
    let doc =
      Json.Obj
        [
          ("schema", Json.String "vmht-bench-eval/2");
          ("git_rev", Json.String (git_rev ()));
          ("jobs", Json.Int (Vmht_par.Parmap.jobs ()));
          ( "experiments",
            Json.List
              (List.map
                 (fun (name, seconds, bytes, stats) ->
                   let cyc = stats.Vmht_eval.Common.run_cycles in
                   let host = stats.Vmht_eval.Common.run_host_ns in
                   let runs = Vmht_obs.Histogram.count cyc in
                   let summary h =
                     Vmht_obs.Histogram.summary_to_json
                       (Vmht_obs.Histogram.summary h)
                   in
                   Json.Obj
                     [
                       ("name", Json.String name);
                       (* Experiments that execute nothing (area and
                          synthesis-time studies) have no per-run
                          timing; the explicit kind tells the perf
                          gate that their missing ns_per_run is
                          intentional, not a silently dropped metric. *)
                       ( "kind",
                         Json.String (if runs = 0 then "synthesis" else "run")
                       );
                       ("seconds", Json.Float seconds);
                       ("runs", Json.Int runs);
                       ( "ns_per_run",
                         if runs = 0 then Json.Null
                         else Json.Float (seconds *. 1e9 /. float_of_int runs)
                       );
                       ("cycles", summary cyc);
                       ("host_ns", summary host);
                       ("output_bytes", Json.Int bytes);
                     ])
                 experiments) );
          ("total_seconds", Json.Float total_seconds);
          ( "synthesis_cache",
            Json.Obj
              [
                ("hits", Json.Int cache.Vmht.Flow.cache_hits);
                ("misses", Json.Int cache.Vmht.Flow.cache_misses);
                ("entries", Json.Int cache.Vmht.Flow.cache_entries);
              ] );
          ( "micro",
            Json.List
              (List.map
                 (fun (name, estimate) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ( "ns_per_run",
                         match estimate with
                         | Some e -> Json.Float e
                         | None -> Json.Null );
                     ])
                 micro) );
        ]
    in
    let oc = open_out path in
    output_string oc (Json.to_string_pretty doc);
    close_out oc;
    Printf.printf "wrote %s\n" path

(* --- entry point -------------------------------------------------- *)

let usage () =
  Printf.printf
    "usage: main.exe [-j N] [--fault-rate R] [--seed S] [target]...\n\
     targets:\n\
    \  all               every experiment, then micro\n\
    \  tables | figures | ablations | sweeps\n\
    \                    the corresponding registry subset\n\
    \  micro [name...]   micro-benchmarks (optionally only targets whose\n\
    \                    name contains one of the given substrings)\n\
    \  perf [--json F]   wall-clock per experiment + cache counters +\n\
    \                    micro estimates, optionally snapshotted to F\n\
     experiments:\n";
  List.iter
    (fun (e : Vmht_eval.Experiment.t) ->
      Printf.printf "  %-8s %-9s %s\n" e.Vmht_eval.Experiment.name
        (Vmht_eval.Experiment.kind_name e.Vmht_eval.Experiment.kind)
        e.Vmht_eval.Experiment.doc)
    Vmht_eval.Experiment.all;
  Printf.printf
    "options:\n\
    \  -j N              domain-pool width (default: recommended domain\n\
    \                    count; 1 = sequential).  Output is byte-identical\n\
    \                    at any width.\n\
    \  --fault-rate R    enable fault injection at per-opportunity\n\
    \                    probability R (the robust experiment then sweeps\n\
    \                    exactly this plan)\n\
    \  --seed S          base seed for the fault schedule\n\
    \  --opt-level N     pass-schedule preset (0, 1 or 2; default 2)\n\
    \  --passes a,b,c    explicit pass schedule overriding --opt-level\n\
    \  --no-fastpath     disable the simulator fast path (cycles and\n\
    \                    outputs are identical either way; see abl7)\n"

let () =
  let jobs = ref (Domain.recommended_domain_count ()) in
  let json_path = ref None in
  let fault_rate = ref None in
  let seed = ref None in
  let opt_level = ref None in
  let passes = ref None in
  let fastpath = ref true in
  let bad msg =
    Printf.eprintf "%s\n" msg;
    usage ();
    exit 1
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some v when v >= 1 ->
        jobs := v;
        parse acc rest
      | _ -> bad (Printf.sprintf "-j needs a positive integer, got '%s'" n))
    | [ "-j" ] -> bad "-j needs a positive integer"
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse acc rest
    | [ "--json" ] -> bad "--json needs a file path"
    | "--fault-rate" :: r :: rest -> (
      match float_of_string_opt r with
      | Some v when v >= 0. ->
        fault_rate := Some v;
        parse acc rest
      | _ -> bad (Printf.sprintf "--fault-rate needs a probability, got '%s'" r))
    | [ "--fault-rate" ] -> bad "--fault-rate needs a probability"
    | "--seed" :: s :: rest -> (
      match int_of_string_opt s with
      | Some v ->
        seed := Some v;
        parse acc rest
      | _ -> bad (Printf.sprintf "--seed needs an integer, got '%s'" s))
    | [ "--seed" ] -> bad "--seed needs an integer"
    | "--opt-level" :: n :: rest -> (
      match int_of_string_opt n with
      | Some v ->
        opt_level := Some v;
        parse acc rest
      | None -> bad (Printf.sprintf "--opt-level needs an integer, got '%s'" n))
    | [ "--opt-level" ] -> bad "--opt-level needs an integer"
    | "--passes" :: list :: rest ->
      passes :=
        Some (List.filter (fun s -> s <> "") (String.split_on_char ',' list));
      parse acc rest
    | [ "--passes" ] -> bad "--passes needs a comma-separated pass list"
    | "--no-fastpath" :: rest ->
      fastpath := false;
      parse acc rest
    | arg :: rest
      when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
      match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
      | Some v when v >= 1 ->
        jobs := v;
        parse acc rest
      | _ -> bad (Printf.sprintf "bad jobs count '%s'" arg))
    | arg :: rest -> parse (arg :: acc) rest
  in
  let targets = parse [] (List.tl (Array.to_list Sys.argv)) in
  let targets = if targets = [] then [ "all" ] else targets in
  Vmht_par.Parmap.set_jobs !jobs;
  let config = Vmht.Config.default in
  let config =
    match !seed with
    | Some s -> Vmht.Config.with_seed config s
    | None -> config
  in
  let config =
    match !fault_rate with
    | Some rate -> Vmht.Config.with_fault config (Vmht_fault.Plan.uniform ~rate)
    | None -> config
  in
  let config =
    match !opt_level with
    | Some n -> Vmht.Config.with_opt_level config n
    | None -> config
  in
  let config = Vmht.Config.with_passes config !passes in
  let config = Vmht.Config.with_fastpath config !fastpath in
  (match Vmht.Config.schedule config with
   | (_ : Vmht_ir.Pass_manager.schedule) -> ()
   | exception Invalid_argument msg ->
     Printf.eprintf "%s\n" msg;
     exit 1);
  let run_kind kind =
    List.iter
      (fun e -> print_string (Vmht_eval.Experiment.run ~config e ^ "\n"))
      (Vmht_eval.Experiment.by_kind kind)
  in
  let rec dispatch = function
    | [] -> ()
    | "all" :: rest ->
      print_string (Vmht_eval.All_experiments.run_all ~config ());
      run_micro ();
      dispatch rest
    | "tables" :: rest ->
      run_kind Vmht_eval.Experiment.Table;
      dispatch rest
    | "figures" :: rest ->
      run_kind Vmht_eval.Experiment.Figure;
      dispatch rest
    | "ablations" :: rest ->
      run_kind Vmht_eval.Experiment.Ablation;
      dispatch rest
    | "sweeps" :: rest ->
      run_kind Vmht_eval.Experiment.Sweep;
      dispatch rest
    | "micro" :: filters ->
      (* everything after `micro` selects targets by substring *)
      run_micro ~filters ()
    | "perf" :: rest ->
      run_perf ~config ~json:!json_path ();
      dispatch rest
    | ("help" | "--help" | "-h") :: rest ->
      usage ();
      dispatch rest
    | name :: rest ->
      (match Vmht_eval.Experiment.find name with
       | Some e -> print_string (Vmht_eval.Experiment.run ~config e ^ "\n")
       | None ->
         Printf.eprintf "unknown experiment '%s'\n" name;
         usage ();
         exit 1);
      dispatch rest
  in
  dispatch targets;
  Vmht_par.Parmap.shutdown ()
