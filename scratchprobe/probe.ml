open Vmht_ir

let () =
  (* f(p) = let p' = mem[p]; x = mem[p']; return x  — written with a
     self-load: p = load p; x = load p; ret x *)
  let f = Ir.create_func ~name:"chase" ~arg_count:1 ~returns_value:true in
  let x = Ir.fresh_reg f in
  let b = { Ir.label = 0; instrs = [ Ir.Load (0, Ir.Reg 0); Ir.Load (x, Ir.Reg 0) ];
            term = Ir.Ret (Some (Ir.Reg x)) } in
  f.Ir.blocks <- [ b ];
  f.Ir.next_label <- 1;
  let mem () = Vmht_lang.Ast_interp.array_memory (Array.of_list [ 2; 99; 7; 42 ]) in
  let before = Ir_interp.run (mem ()) f ~args:[ 0 ] in
  let n = Passes.store_forward f in
  let after = Ir_interp.run (mem ()) f ~args:[ 0 ] in
  Printf.printf "rewrites=%d before=%s after=%s\n" n
    (match before with Some v -> string_of_int v | None -> "none")
    (match after with Some v -> string_of_int v | None -> "none");
  print_string (Ir.func_to_string f)
